//! Duato's protocol: fully adaptive routing with an escape layer.

use crate::tfar::profitable_channels;
use crate::{Candidate, Dor, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::KAryNCube;

/// Fully adaptive routing kept deadlock-free by Duato's protocol \[7\]:
/// virtual channels 2..V are fully adaptive (any profitable channel), while
/// VCs 0 and 1 form a dateline-DOR *escape* subnetwork. A blocked message
/// can always fall back to the escape channel, so cycles among adaptive
/// channels never close into a knot — this is the "escape resource"
/// (channel 7 of Figure 4b) that turns would-be deadlocks into cyclic
/// non-deadlocks.
///
/// Requires at least 3 VCs per physical channel.
#[derive(Clone, Copy, Debug, Default)]
pub struct DuatoFar;

impl RoutingAlgorithm for DuatoFar {
    fn name(&self) -> &'static str {
        "Duato"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn min_vcs(&self) -> usize {
        3
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        debug_assert!(vcs >= self.min_vcs());
        // Adaptive layer: every profitable channel, VCs 2..V.
        let mut chans = Vec::with_capacity(2 * topo.n());
        profitable_channels(topo, ctx, &mut chans);
        out.extend(chans.iter().map(|&(channel, _)| Candidate {
            channel,
            vcs: VcMask::from(2, vcs),
        }));
        // Escape layer: the dimension-order hop on the dateline VC class.
        if let Some((ch, dim)) = Dor::next_hop(topo, ctx) {
            let vc = if ctx.crossed(dim) { 1 } else { 0 };
            out.push(Candidate {
                channel: ch,
                vcs: VcMask::only(vc),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{Coords, NodeId};

    #[test]
    fn adaptive_plus_escape_candidates() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[0, 0]));
        let dst = t.node_at(&Coords::new(&[2, 3]));
        let ctx = RoutingCtx::fresh(cur, dst, cur);
        let mut out = Vec::new();
        DuatoFar.candidates(&t, 3, &ctx, &mut out);
        // two adaptive (dims 0 and 1) + one escape
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].vcs, VcMask::only(2));
        assert_eq!(out[1].vcs, VcMask::only(2));
        assert_eq!(out[2].vcs, VcMask::only(0));
    }

    #[test]
    fn escape_tracks_dateline() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[1, 0]));
        let dst = t.node_at(&Coords::new(&[4, 0]));
        let mut ctx = RoutingCtx::fresh(NodeId(0), dst, cur);
        ctx.crossed_dateline = 0b01;
        let mut out = Vec::new();
        DuatoFar.candidates(&t, 4, &ctx, &mut out);
        let escape = out.last().unwrap();
        assert_eq!(escape.vcs, VcMask::only(1));
        // adaptive mask excludes escape VCs
        assert_eq!(out[0].vcs, VcMask::from(2, 4));
    }

    #[test]
    fn adaptive_and_escape_vcs_disjoint() {
        let t = KAryNCube::torus(8, 2, true);
        let ctx = RoutingCtx::fresh(NodeId(0), NodeId(27), NodeId(0));
        let mut out = Vec::new();
        DuatoFar.candidates(&t, 4, &ctx, &mut out);
        let escape = out.last().unwrap().vcs;
        for c in &out[..out.len() - 1] {
            assert_eq!(c.vcs.0 & escape.0, 0);
        }
    }

    #[test]
    fn minimal_and_connected() {
        for topo in [KAryNCube::torus(6, 2, true), KAryNCube::torus(6, 2, false)] {
            crate::check_minimal_connected(&DuatoFar, &topo, 3).unwrap();
        }
    }
}
