//! West-first turn-model routing for 2-D meshes.

use crate::{Candidate, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::{Direction, KAryNCube, RoutingOffset};

/// West-first routing (Glass & Ni's turn model \[2\]) for 2-D meshes: all
/// westward (`Minus` along dimension 0) hops are taken first, with no
/// adaptivity; once no westward hop remains, the message routes fully
/// adaptively among the remaining profitable directions. Prohibiting the
/// two turns *into* west breaks every abstract cycle, so the relation is
/// deadlock-free on a mesh with a single virtual channel.
#[derive(Clone, Copy, Debug, Default)]
pub struct WestFirst;

impl RoutingAlgorithm for WestFirst {
    fn name(&self) -> &'static str {
        "west-first"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        debug_assert!(!topo.is_torus(), "turn model applies to meshes");
        debug_assert_eq!(topo.n(), 2, "west-first is defined for 2-D meshes");
        let mask = VcMask::all(vcs);
        // Any westward component must be routed first, exclusively.
        if let RoutingOffset::Dir(Direction::Minus, _) =
            topo.routing_offset(ctx.current, ctx.dst, 0)
        {
            let ch = topo
                .channel_from(ctx.current, 0, Direction::Minus)
                .expect("mesh interior channel");
            out.push(Candidate {
                channel: ch,
                vcs: mask,
            });
            return;
        }
        // Otherwise fully adaptive among the profitable non-west directions.
        for dim in 0..2 {
            if let RoutingOffset::Dir(dir, _) = topo.routing_offset(ctx.current, ctx.dst, dim) {
                let ch = topo
                    .channel_from(ctx.current, dim, dir)
                    .expect("mesh interior channel");
                out.push(Candidate {
                    channel: ch,
                    vcs: mask,
                });
            }
        }
        if let Some(last) = ctx.last_dim {
            out.sort_by_key(|c| topo.channel(c.channel).dim != last);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::Coords;

    fn route(topo: &KAryNCube, cur: &[u16], dst: &[u16]) -> Vec<Candidate> {
        let cur = topo.node_at(&Coords::new(cur));
        let dst = topo.node_at(&Coords::new(dst));
        let mut out = Vec::new();
        WestFirst.candidates(topo, 1, &RoutingCtx::fresh(cur, dst, cur), &mut out);
        out
    }

    #[test]
    fn west_component_routed_first_and_alone() {
        let m = KAryNCube::mesh(8, 2);
        let cands = route(&m, &[5, 2], &[1, 6]);
        assert_eq!(cands.len(), 1);
        let info = m.channel(cands[0].channel);
        assert_eq!((info.dim, info.dir), (0, Direction::Minus));
    }

    #[test]
    fn eastbound_is_adaptive() {
        let m = KAryNCube::mesh(8, 2);
        let cands = route(&m, &[1, 1], &[4, 5]);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn pure_vertical_allowed() {
        let m = KAryNCube::mesh(8, 2);
        let cands = route(&m, &[3, 1], &[3, 6]);
        assert_eq!(cands.len(), 1);
        assert_eq!(m.channel(cands[0].channel).dim, 1);
    }

    #[test]
    fn minimal_and_connected() {
        crate::check_minimal_connected(&WestFirst, &KAryNCube::mesh(6, 2), 1).unwrap();
    }
}
