//! Static channel-dependency analysis (Dally & Seitz style).
//!
//! The paper's related-work section distinguishes two uses of dependency
//! graphs: *static* graphs describing every connection a routing relation
//! could ever make (avoidance theory), and the *dynamic* channel wait-for
//! graphs its detector analyzes (`icn-cwg`). This module implements the
//! static side: it enumerates every reachable routing state for every
//! (source, destination) pair, records which virtual channel can be held
//! while which is requested next, and checks the resulting dependency
//! graph for cycles.
//!
//! * An **acyclic** graph proves the relation deadlock-free (sufficient
//!   condition) — the dateline and turn-model baselines pass.
//! * DOR and TFAR on tori are **cyclic**, which is precisely why the paper
//!   can study their true deadlocks.
//! * Duato-style relations are cyclic *by design*; their guarantee rests
//!   on an acyclic escape sub-network, checked via [`subgraph`].

use crate::{RoutingAlgorithm, RoutingCtx};
use icn_topology::{KAryNCube, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Routing state relevant to candidate computation (everything in
/// [`RoutingCtx`] that the relations actually read, minus the position).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CtxBits {
    last_dim: Option<u8>,
    crossed: u8,
    misroutes: u8,
}

/// Builds the static channel-dependency graph of `algo` on `topo` with
/// `vcs` virtual channels per physical channel. Vertex `c * vcs + v` is
/// VC `v` of channel `c`; an edge `u -> w` means some packet can hold `u`
/// while requesting `w` on its next hop.
pub fn channel_dependency_graph(
    algo: &dyn RoutingAlgorithm,
    topo: &KAryNCube,
    vcs: usize,
) -> Vec<Vec<u32>> {
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); topo.num_channels() * vcs];
    let mut cands = Vec::new();

    for dst in 0..topo.num_nodes() as u32 {
        let dst = NodeId(dst);
        // Reachable states for this destination, with the set of VCs a
        // packet can arrive on ("in VCs"). Edges are emitted lazily as new
        // in-VCs reach a state.
        let mut state_cands: HashMap<(NodeId, CtxBits), Vec<u32>> = HashMap::new();
        let mut state_in: HashMap<(NodeId, CtxBits), HashSet<u32>> = HashMap::new();
        let mut queue: VecDeque<(NodeId, CtxBits, Option<u32>)> = VecDeque::new();

        for src in 0..topo.num_nodes() as u32 {
            let src = NodeId(src);
            if src != dst {
                queue.push_back((
                    src,
                    CtxBits {
                        last_dim: None,
                        crossed: 0,
                        misroutes: 0,
                    },
                    None,
                ));
            }
        }

        while let Some((node, bits, in_vc)) = queue.pop_front() {
            if node == dst {
                continue;
            }
            let key = (node, bits);
            // Expand candidates once per state.
            if let std::collections::hash_map::Entry::Vacant(entry) = state_cands.entry(key) {
                let ctx = RoutingCtx {
                    src: node, // relations here never read src
                    dst,
                    current: node,
                    last_dim: bits.last_dim,
                    crossed_dateline: bits.crossed,
                    misroutes: bits.misroutes,
                };
                cands.clear();
                algo.candidates(topo, vcs, &ctx, &mut cands);
                let mut outs = Vec::new();
                for cand in &cands {
                    let base = cand.channel.idx() * vcs;
                    for v in cand.vcs.iter() {
                        outs.push((base + v) as u32);
                    }
                }
                // Enqueue successor states.
                for cand in &cands {
                    let info = *topo.channel(cand.channel);
                    let mut nbits = bits;
                    nbits.last_dim = Some(info.dim);
                    if topo.is_wraparound(cand.channel) {
                        nbits.crossed |= 1 << info.dim;
                    }
                    if topo.distance(info.dst, dst) >= topo.distance(info.src, dst) {
                        nbits.misroutes = nbits.misroutes.saturating_add(1);
                    }
                    let base = cand.channel.idx() * vcs;
                    for v in cand.vcs.iter() {
                        queue.push_back((info.dst, nbits, Some((base + v) as u32)));
                    }
                }
                entry.insert(outs);
                state_in.insert(key, HashSet::new());
            }
            // Record the incoming VC and emit its dependency edges.
            if let Some(u) = in_vc {
                if state_in.get_mut(&key).unwrap().insert(u) {
                    for &w in &state_cands[&key] {
                        adj[u as usize].insert(w);
                    }
                }
            }
        }
    }

    adj.into_iter()
        .map(|s| {
            let mut v: Vec<u32> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Whether the dependency graph contains a cycle (three-colour DFS,
/// iterative).
pub fn has_cycle(adj: &[Vec<u32>]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; adj.len()];
    for start in 0..adj.len() as u32 {
        if color[start as usize] != Color::White {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        color[start as usize] = Color::Gray;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v as usize].len() {
                let w = adj[v as usize][*ei];
                *ei += 1;
                match color[w as usize] {
                    Color::Gray => return true,
                    Color::White => {
                        color[w as usize] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[v as usize] = Color::Black;
                stack.pop();
            }
        }
    }
    false
}

/// Restricts a dependency graph to the vertices `keep` accepts (e.g. a
/// Duato escape layer), dropping all other vertices and their edges.
pub fn subgraph(adj: &[Vec<u32>], keep: impl Fn(u32) -> bool) -> Vec<Vec<u32>> {
    adj.iter()
        .enumerate()
        .map(|(v, outs)| {
            if keep(v as u32) {
                outs.iter().copied().filter(|&w| keep(w)).collect()
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// Statically verifies that `algo` is deadlock-free on `topo` by the
/// acyclic-dependency sufficient condition. `Err` carries a description;
/// note that relations relying on escape layers (Duato) legitimately fail
/// this whole-graph test — check their escape [`subgraph`] instead.
pub fn verify_acyclic(
    algo: &dyn RoutingAlgorithm,
    topo: &KAryNCube,
    vcs: usize,
) -> Result<(), String> {
    let adj = channel_dependency_graph(algo, topo, vcs);
    if has_cycle(&adj) {
        Err(format!(
            "{} has cyclic channel dependencies on {}-ary {}-cube ({} VCs)",
            algo.name(),
            topo.k(),
            topo.n(),
            vcs
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatelineDor, Dor, DuatoFar, NegativeFirst, Tfar, WestFirst};

    #[test]
    fn dor_on_torus_is_cyclic() {
        let t = KAryNCube::torus(4, 2, true);
        assert!(verify_acyclic(&Dor, &t, 1).is_err());
        let uni = KAryNCube::torus(4, 1, false);
        assert!(verify_acyclic(&Dor, &uni, 1).is_err());
    }

    #[test]
    fn dor_on_mesh_is_acyclic() {
        // The classic result: dimension-order routing is deadlock-free on
        // meshes (no wraparound to close the ring cycles).
        let m = KAryNCube::mesh(4, 2);
        verify_acyclic(&Dor, &m, 1).unwrap();
        verify_acyclic(&Dor, &KAryNCube::mesh(3, 3), 2).unwrap();
    }

    #[test]
    fn tfar_is_cyclic_everywhere_interesting() {
        assert!(verify_acyclic(&Tfar, &KAryNCube::torus(4, 2, true), 1).is_err());
        assert!(verify_acyclic(&Tfar, &KAryNCube::torus(4, 2, true), 4).is_err());
        // Even on a mesh, unrestricted adaptivity creates turn cycles.
        assert!(verify_acyclic(&Tfar, &KAryNCube::mesh(4, 2), 1).is_err());
    }

    #[test]
    fn dateline_dor_is_acyclic_on_tori() {
        verify_acyclic(&DatelineDor, &KAryNCube::torus(4, 2, true), 2).unwrap();
        verify_acyclic(&DatelineDor, &KAryNCube::torus(5, 2, true), 2).unwrap();
        verify_acyclic(&DatelineDor, &KAryNCube::torus(4, 1, false), 2).unwrap();
        verify_acyclic(&DatelineDor, &KAryNCube::torus(3, 3, true), 2).unwrap();
    }

    #[test]
    fn turn_models_are_acyclic_on_meshes() {
        verify_acyclic(&WestFirst, &KAryNCube::mesh(5, 2), 1).unwrap();
        verify_acyclic(&NegativeFirst, &KAryNCube::mesh(5, 2), 1).unwrap();
        verify_acyclic(&NegativeFirst, &KAryNCube::mesh(3, 3), 1).unwrap();
        verify_acyclic(&NegativeFirst, &KAryNCube::hypercube(4), 1).unwrap();
    }

    #[test]
    fn duato_full_graph_cyclic_but_escape_layer_acyclic() {
        let t = KAryNCube::torus(4, 2, true);
        let vcs = 3;
        let adj = channel_dependency_graph(&DuatoFar, &t, vcs);
        assert!(has_cycle(&adj), "adaptive layer cycles are the design");
        // Escape layer = VC classes 0 and 1 on every channel.
        let escape = subgraph(&adj, |v| (v as usize % vcs) < 2);
        assert!(!has_cycle(&escape), "the escape layer must be acyclic");
    }

    #[test]
    fn dependency_edges_connect_adjacent_channels() {
        let t = KAryNCube::torus(4, 2, true);
        let adj = channel_dependency_graph(&Dor, &t, 1);
        for (u, outs) in adj.iter().enumerate() {
            let cu = t.channel(icn_topology::ChannelId(u as u32));
            for &w in outs {
                let cw = t.channel(icn_topology::ChannelId(w));
                assert_eq!(cu.dst, cw.src, "dependencies follow the header");
            }
        }
    }

    #[test]
    fn has_cycle_basics() {
        assert!(!has_cycle(&[vec![1], vec![2], vec![]]));
        assert!(has_cycle(&[vec![1], vec![2], vec![0]]));
        assert!(has_cycle(&[vec![0]]));
        assert!(!has_cycle(&[]));
    }

    #[test]
    fn subgraph_drops_vertices() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let sub = subgraph(&adj, |v| v != 1);
        assert_eq!(sub, vec![Vec::<u32>::new(), Vec::new(), vec![0]]);
        assert!(!has_cycle(&sub));
    }
}
