//! Dateline-based deadlock-free dimension-order routing.

use crate::{Candidate, Dor, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::KAryNCube;

/// DOR made deadlock-free on tori by splitting each ring's virtual channels
/// into two classes at a *dateline* (the wraparound link): messages use VC 0
/// until they cross the dateline of the dimension they are travelling in,
/// and VC 1 afterwards (Dally & Seitz).
///
/// This is the classic avoidance-based baseline the paper contrasts with
/// recovery: it is provably deadlock-free but halves the usable VC pool per
/// position, producing exactly the "inefficient use of network resources"
/// trade-off discussed in §1.
#[derive(Clone, Copy, Debug, Default)]
pub struct DatelineDor;

impl RoutingAlgorithm for DatelineDor {
    fn name(&self) -> &'static str {
        "DOR-dateline"
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn min_vcs(&self) -> usize {
        2
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        debug_assert!(vcs >= self.min_vcs());
        if let Some((ch, dim)) = Dor::next_hop(topo, ctx) {
            // Meshes have no wraparound, so the class split only matters on
            // tori, but applying it uniformly is still correct.
            let vc = if ctx.crossed(dim) { 1 } else { 0 };
            out.push(Candidate {
                channel: ch,
                vcs: VcMask::only(vc),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{Coords, NodeId};

    #[test]
    fn uses_class_zero_before_crossing() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[1, 0]));
        let dst = t.node_at(&Coords::new(&[4, 0]));
        let ctx = RoutingCtx::fresh(cur, dst, cur);
        let mut out = Vec::new();
        DatelineDor.candidates(&t, 2, &ctx, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vcs, VcMask::only(0));
    }

    #[test]
    fn switches_class_after_crossing() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[0, 0]));
        let dst = t.node_at(&Coords::new(&[2, 0]));
        let mut ctx = RoutingCtx::fresh(NodeId(63), dst, cur);
        ctx.crossed_dateline = 0b01; // crossed dim-0 dateline
        let mut out = Vec::new();
        DatelineDor.candidates(&t, 2, &ctx, &mut out);
        assert_eq!(out[0].vcs, VcMask::only(1));
    }

    #[test]
    fn crossing_in_other_dim_does_not_switch() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[1, 0]));
        let dst = t.node_at(&Coords::new(&[4, 0]));
        let mut ctx = RoutingCtx::fresh(cur, dst, cur);
        ctx.crossed_dateline = 0b10; // crossed dim-1 dateline, routing in dim 0
        let mut out = Vec::new();
        DatelineDor.candidates(&t, 2, &ctx, &mut out);
        assert_eq!(out[0].vcs, VcMask::only(0));
    }

    #[test]
    fn minimal_and_connected() {
        for topo in [KAryNCube::torus(6, 2, true), KAryNCube::torus(6, 2, false)] {
            crate::check_minimal_connected(&DatelineDor, &topo, 2).unwrap();
        }
    }
}
