//! Sweep-grid job submissions.
//!
//! A job body is `{"base": <config>, "seeds": [...], "loads": [...]}`:
//! one full [`RunConfig`] in its canonical JSON form plus optional seed
//! and load axes. The expansion is the `loads × seeds` cross-product in
//! deterministic order (outer loads, inner seeds), so the configuration
//! at index `i` is the same on every server that ever sees the grid —
//! job checkpoints refer to configs by index.

use flexsim::forensics::{config_from_json, config_to_json};
use flexsim::jsonio::{bad, get, obj, parse, u64_arr, Json, ParseError};
use flexsim::RunConfig;

/// A parsed job submission.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Template configuration; seed and load are overridden per point.
    pub base: RunConfig,
    /// Seed axis. Defaults to `[base.seed]`.
    pub seeds: Vec<u64>,
    /// Load axis. Defaults to `[base.load]`.
    pub loads: Vec<f64>,
    /// Optional per-config wall-clock budget in milliseconds. A config
    /// that exceeds it is marked `timed_out` (terminal) instead of
    /// completing. Persisted with the grid so every fleet member applies
    /// the same deadline after recovery.
    pub timeout_ms: Option<u64>,
}

impl SweepGrid {
    /// Parses a submission body.
    pub fn from_json(text: &str) -> Result<SweepGrid, ParseError> {
        let v = parse(text)?;
        let base = config_from_json(get(&v, "base")?)?;
        let seeds = match v.get("seeds") {
            None => vec![base.seed],
            Some(s) => {
                let arr = s.as_arr().ok_or_else(|| bad("`seeds` must be an array"))?;
                arr.iter()
                    .map(|x| x.as_u64().ok_or_else(|| bad("`seeds` holds a non-u64")))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let loads = match v.get("loads") {
            None => vec![base.load],
            Some(l) => {
                let arr = l.as_arr().ok_or_else(|| bad("`loads` must be an array"))?;
                arr.iter()
                    .map(|x| x.as_f64().ok_or_else(|| bad("`loads` holds a non-number")))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        if seeds.is_empty() || loads.is_empty() {
            return Err(bad("grid axes must be non-empty"));
        }
        if !loads.iter().all(|l| l.is_finite() && *l > 0.0) {
            return Err(bad("`loads` must be finite and positive"));
        }
        let timeout_ms = match v.get("timeout_ms") {
            None => None,
            Some(t) => {
                let ms = t
                    .as_u64()
                    .ok_or_else(|| bad("`timeout_ms` must be a u64"))?;
                if ms == 0 {
                    return Err(bad("`timeout_ms` must be positive"));
                }
                Some(ms)
            }
        };
        Ok(SweepGrid {
            base,
            seeds,
            loads,
            timeout_ms,
        })
    }

    /// Renders the grid back to its canonical submission form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("base", config_to_json(&self.base)),
            ("seeds", u64_arr(self.seeds.iter().copied())),
            (
                "loads",
                Json::Arr(self.loads.iter().map(|l| Json::F64(*l)).collect()),
            ),
        ];
        if let Some(ms) = self.timeout_ms {
            fields.push(("timeout_ms", Json::U64(ms)));
        }
        obj(fields)
    }

    /// Expands to concrete configurations: outer loop over loads, inner
    /// over seeds.
    pub fn expand(&self) -> Vec<RunConfig> {
        let mut out = Vec::with_capacity(self.loads.len() * self.seeds.len());
        for &load in &self.loads {
            for &seed in &self.seeds {
                let mut cfg = self.base.clone();
                cfg.load = load;
                cfg.seed = seed;
                out.push(cfg);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_default_to_base_values() {
        let base = RunConfig::small_default();
        let body = obj(vec![("base", config_to_json(&base))]).to_string();
        let grid = SweepGrid::from_json(&body).unwrap();
        assert_eq!(grid.seeds, vec![base.seed]);
        assert_eq!(grid.loads, vec![base.load]);
        assert_eq!(grid.expand().len(), 1);
        assert_eq!(grid.expand()[0], base);
    }

    #[test]
    fn expansion_order_is_loads_outer_seeds_inner() {
        let base = RunConfig::small_default();
        let mut grid = SweepGrid {
            base,
            seeds: vec![1, 2],
            loads: vec![0.1, 0.2],
            timeout_ms: Some(120_000),
        };
        let cfgs = grid.expand();
        let points: Vec<(f64, u64)> = cfgs.iter().map(|c| (c.load, c.seed)).collect();
        assert_eq!(points, vec![(0.1, 1), (0.1, 2), (0.2, 1), (0.2, 2)]);
        // Round-trip through JSON preserves the expansion exactly.
        grid.base.seed = 7;
        let again = SweepGrid::from_json(&grid.to_json().to_string()).unwrap();
        assert_eq!(
            again.timeout_ms,
            Some(120_000),
            "timeout survives round-trip"
        );
        let digests: Vec<String> = again
            .expand()
            .iter()
            .map(crate::cache::config_key)
            .collect();
        let expect: Vec<String> = grid.expand().iter().map(crate::cache::config_key).collect();
        assert_eq!(digests, expect);
    }

    #[test]
    fn rejects_bad_axes() {
        let base = RunConfig::small_default();
        let body = obj(vec![
            ("base", config_to_json(&base)),
            ("seeds", Json::Arr(vec![])),
        ])
        .to_string();
        assert!(SweepGrid::from_json(&body).is_err());
        let body = obj(vec![
            ("base", config_to_json(&base)),
            ("loads", Json::Arr(vec![Json::F64(-0.5)])),
        ])
        .to_string();
        assert!(SweepGrid::from_json(&body).is_err());
        assert!(SweepGrid::from_json("{\"no\":\"base\"}").is_err());
        let body = obj(vec![
            ("base", config_to_json(&base)),
            ("timeout_ms", Json::U64(0)),
        ])
        .to_string();
        assert!(
            SweepGrid::from_json(&body).is_err(),
            "zero timeout rejected"
        );
    }
}
