//! Minimal HTTP/1.1 over `std::net` — hand-rolled on purpose: the build
//! environment is offline and the repo's policy is zero new dependencies.
//!
//! The server side parses exactly what the campaign API needs (request
//! line, headers, `Content-Length` body) and always answers with
//! `Connection: close`, so a connection carries one request. The client
//! side ([`http_request`]) is the same subset from the other end; the
//! integration tests, the `repro serve --smoke` self-check, and any
//! script with a TCP stack can drive the API with it.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest accepted request body (a million-config grid is ~kilobytes;
/// this bound exists to shed hostile inputs, not to constrain use).
pub const MAX_BODY: usize = 16 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    pub body: Vec<u8>,
}

fn bad_input(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one request from the stream. Returns `Err` on malformed input;
/// the caller answers 400 and closes.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad_input("empty request line"))?
        .to_string();
    let target = parts.next().ok_or_else(|| bad_input("missing target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(bad_input("target must be absolute"));
    }

    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad_input("connection closed inside headers"));
        }
        let t = h.trim();
        if t.is_empty() {
            break;
        }
        if let Some((k, v)) = t.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| bad_input("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad_input("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes. `Connection: close` always.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    respond_with_headers(stream, status, content_type, &[], body)
}

/// [`respond`] with additional response headers (name, value pairs).
pub fn respond_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// JSON response helper.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, "application/json", body.as_bytes())
}

/// A one-line JSON error body.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    let body = flexsim::jsonio::obj(vec![(
        "error",
        flexsim::jsonio::Json::Str(message.to_string()),
    )])
    .to_string();
    respond_json(stream, status, &body)
}

/// Blocking HTTP client for the campaign API: sends one request, reads
/// the full response (the server closes the connection after it).
/// Returns `(status, body)`.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let (status, _, payload) = http_request_full(addr, method, path, body)?;
    Ok((status, payload))
}

/// Full client response: `(status, lowercase headers, body)`.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// [`http_request`] that also returns the response headers as
/// lowercase-name `(name, value)` pairs — the fleet tests read
/// `x-job-complete` from partial results streams.
pub fn http_request_full(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<FullResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: campaign\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| bad_input("non-UTF-8 response"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad_input("truncated response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_input("bad status line"))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| {
            let (name, value) = l.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok((status, headers, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.body, b"{\"x\":1}");
            let mut stream = stream;
            respond_json(&mut stream, 200, "{\"ok\":true}").unwrap();
        });
        let (status, body) =
            http_request(addr, "POST", "/jobs?verbose=1", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn get_without_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "GET");
            assert!(req.body.is_empty());
            let mut stream = stream;
            respond(&mut stream, 404, "text/plain", b"nope").unwrap();
        });
        let (status, body) = http_request(addr, "GET", "/stats", None).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "nope");
        server.join().unwrap();
    }

    #[test]
    fn extra_headers_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let _ = read_request(&stream).unwrap();
            let mut stream = stream;
            respond_with_headers(
                &mut stream,
                200,
                "application/x-ndjson",
                &[("X-Job-Complete", "false")],
                b"{}\n",
            )
            .unwrap();
        });
        let (status, headers, body) =
            http_request_full(addr, "GET", "/jobs/1/results", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}\n");
        let complete = headers
            .iter()
            .find(|(n, _)| n == "x-job-complete")
            .map(|(_, v)| v.as_str());
        assert_eq!(complete, Some("false"));
        server.join().unwrap();
    }

    #[test]
    fn malformed_request_line_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"garbage\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        assert!(read_request(&stream).is_err());
        client.join().unwrap();
    }
}
