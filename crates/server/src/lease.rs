//! Lease files: cross-process mutual exclusion over per-config work.
//!
//! A lease is a file in `data_dir/leases/` named after its (job, config)
//! pair, holding the owner's pid and a monotonic heartbeat counter. The
//! protocol:
//!
//! * **Acquire** — `O_CREAT|O_EXCL` via [`flexsim::jsonio::durable::create_exclusive`];
//!   of any number of racing processes exactly one wins.
//! * **Renew** — the owner's heartbeat thread rewrites the lease
//!   atomically with the counter incremented, refreshing its mtime.
//! * **Expire** — a lease is stale when its owner pid is no longer alive
//!   (checked via `/proc/<pid>` on Linux — instant reclaim after a
//!   `kill -9`) or its file has not been renewed within the expiry window
//!   (the portable fallback, and the guard against pid reuse).
//! * **Break** — a claimant that finds a stale lease renames it to a
//!   unique tombstone first (the rename is the race arbiter: exactly one
//!   breaker wins), deletes the tombstone, and retries acquisition.
//!
//! A broken lease never implies lost work: the worker that reclaims a
//! config re-reads the job checkpoint *after* acquiring the lease, so a
//! result the dead owner managed to append is adopted, not recomputed.

use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use flexsim::jsonio::{durable, get_u64, obj, parse, Json};

/// Unique suffix for break-time tombstones within this process.
static BREAK_SEQ: AtomicU64 = AtomicU64::new(0);

/// A lease directory with its expiry policy.
pub struct LeaseDir {
    dir: PathBuf,
    expiry: Duration,
}

/// A currently held lease; renewing bumps `counter`.
#[derive(Debug)]
pub struct HeldLease {
    path: PathBuf,
    counter: u64,
}

/// Outcome of a successful acquisition.
pub struct Acquired {
    pub lease: HeldLease,
    /// The acquisition broke a stale lease left by a dead or stalled
    /// sibling — surfaced per job as `reclaimed_leases`.
    pub reclaimed: bool,
}

fn lease_body(counter: u64) -> String {
    obj(vec![
        ("pid", Json::U64(std::process::id() as u64)),
        ("counter", Json::U64(counter)),
    ])
    .to_string()
}

/// Whether `pid` is a live process. On Linux, `/proc/<pid>` existence;
/// elsewhere the question is unanswerable from std, so the caller falls
/// back to mtime-based expiry alone.
fn pid_alive(pid: u64) -> Option<bool> {
    if cfg!(target_os = "linux") {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

impl LeaseDir {
    /// Opens (creating if needed) `<data_dir>/leases`.
    pub fn open(dir: impl Into<PathBuf>, expiry: Duration) -> io::Result<LeaseDir> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(LeaseDir { dir, expiry })
    }

    /// The expiry window (heartbeats should run several times per window).
    pub fn expiry(&self) -> Duration {
        self.expiry
    }

    fn path_for(&self, job: u64, index: usize) -> PathBuf {
        self.dir.join(format!("job-{job}-cfg-{index}.lease"))
    }

    /// A lease is stale when its owner is provably dead, or — when
    /// liveness is unknowable or the content torn — when it has not been
    /// renewed within the expiry window.
    fn is_stale(&self, path: &Path) -> bool {
        let owner = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| parse(&text).ok())
            .and_then(|v| get_u64(&v, "pid").ok());
        match owner {
            Some(pid) if pid == std::process::id() as u64 => {
                // Our own pid in a lease we do not hold in memory: a
                // previous incarnation of this pid (restart with pid
                // reuse) or a leaked entry. Age it out like any other.
                self.older_than_expiry(path)
            }
            Some(pid) => match pid_alive(pid) {
                Some(false) => true,
                Some(true) => self.older_than_expiry(path),
                None => self.older_than_expiry(path),
            },
            // Torn content: the claimant died inside `create_exclusive`.
            None => self.older_than_expiry(path),
        }
    }

    fn older_than_expiry(&self, path: &Path) -> bool {
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| mtime.elapsed().ok())
            .map(|age| age > self.expiry)
            .unwrap_or(false)
    }

    /// Attempts to claim the lease for (`job`, `index`). `Ok(None)` means
    /// a live sibling holds it — the caller leaves the config to them.
    pub fn try_acquire(&self, job: u64, index: usize) -> io::Result<Option<Acquired>> {
        let path = self.path_for(job, index);
        for attempt in 0..2 {
            match durable::create_exclusive(&path, lease_body(0).as_bytes()) {
                Ok(()) => {
                    return Ok(Some(Acquired {
                        lease: HeldLease { path, counter: 0 },
                        reclaimed: attempt > 0,
                    }))
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    if attempt > 0 || !self.is_stale(&path) {
                        return Ok(None);
                    }
                    // Break the stale lease: rename first so exactly one
                    // breaker wins the reclaim, then clear the tombstone.
                    let tombstone = self.dir.join(format!(
                        ".broken-{}-{}",
                        std::process::id(),
                        BREAK_SEQ.fetch_add(1, Ordering::Relaxed)
                    ));
                    if std::fs::rename(&path, &tombstone).is_err() {
                        // Lost the break race (or the owner revived).
                        return Ok(None);
                    }
                    let _ = std::fs::remove_file(&tombstone);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Heartbeat: rewrites the lease with the counter incremented. An
    /// atomic replace, so observers always read a whole lease body.
    pub fn renew(&self, held: &mut HeldLease) -> io::Result<()> {
        held.counter += 1;
        durable::write_atomic(&held.path, lease_body(held.counter).as_bytes())
    }

    /// Releases a held lease. Missing files are fine (a sibling may have
    /// broken the lease if we stalled past expiry).
    pub fn release(&self, held: HeldLease) {
        let _ = std::fs::remove_file(&held.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "icn-lease-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn acquire_is_exclusive_and_release_frees() {
        let leases = LeaseDir::open(dir("excl"), Duration::from_secs(60)).unwrap();
        let a = leases.try_acquire(1, 0).unwrap().expect("first claim wins");
        assert!(!a.reclaimed);
        assert!(
            leases.try_acquire(1, 0).unwrap().is_none(),
            "live lease blocks"
        );
        // A different config is independent.
        assert!(leases.try_acquire(1, 1).unwrap().is_some());
        leases.release(a.lease);
        assert!(
            leases.try_acquire(1, 0).unwrap().is_some(),
            "released lease reopens"
        );
    }

    #[test]
    fn dead_owner_lease_is_reclaimed() {
        let leases = LeaseDir::open(dir("dead"), Duration::from_secs(60)).unwrap();
        // Forge a lease owned by a pid that cannot be alive (pid_max on
        // Linux is < 2^22 by default; 2^31-1 is safely unused, and if
        // liveness is unknowable the expiry fallback keeps this test
        // meaningful only on Linux — gate on it).
        if !cfg!(target_os = "linux") {
            return;
        }
        let path = leases.path_for(7, 3);
        let body = obj(vec![
            ("pid", Json::U64(0x7fff_fff1)),
            ("counter", Json::U64(5)),
        ])
        .to_string();
        std::fs::write(&path, body).unwrap();
        let a = leases
            .try_acquire(7, 3)
            .unwrap()
            .expect("dead owner must be reclaimed");
        assert!(a.reclaimed, "reclaim must be reported");
    }

    #[test]
    fn renew_bumps_counter_and_refreshes() {
        let leases = LeaseDir::open(dir("renew"), Duration::from_millis(50)).unwrap();
        let mut a = leases.try_acquire(2, 0).unwrap().unwrap();
        leases.renew(&mut a.lease).unwrap();
        leases.renew(&mut a.lease).unwrap();
        let text = std::fs::read_to_string(leases.path_for(2, 0)).unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(get_u64(&v, "counter").unwrap(), 2);
        assert_eq!(
            get_u64(&v, "pid").unwrap(),
            std::process::id() as u64,
            "renewal keeps ownership"
        );
    }

    #[test]
    fn expired_lease_is_reclaimed_by_age() {
        let leases = LeaseDir::open(dir("age"), Duration::from_millis(10)).unwrap();
        // A torn lease (unparseable content) from any pid ages out.
        let path = leases.path_for(9, 0);
        std::fs::write(&path, "{\"pi").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let a = leases
            .try_acquire(9, 0)
            .unwrap()
            .expect("expired torn lease must be reclaimed");
        assert!(a.reclaimed);
    }
}
