//! Shared server state: the job table, the work-stealing queues, and the
//! worker loop that drains them through the supervised runner.
//!
//! Each worker owns a deque; units are dealt round-robin at submission,
//! a worker pops its own deque LIFO and steals FIFO from the longest
//! sibling when empty. All deques sit behind one mutex — the unit of
//! work is a whole simulation (milliseconds to minutes), so queue
//! contention is irrelevant and the single lock keeps the stealing logic
//! trivially correct.
//!
//! Results are never kept in memory: a completed unit is appended to its
//! job's checkpoint file in the exact [`checkpoint_line`] format the core
//! sweep writes, so `GET /jobs/:id/results` is a file read and a
//! restarted server resumes with the core [`restore_checkpoint`] — the
//! same machinery, digest-exact.

use std::collections::{BTreeMap, VecDeque};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use flexsim::{checkpoint_line, run_supervised, RunConfig, SweepOptions};

use crate::cache::ResultCache;

/// One schedulable piece of work: configuration `index` of job `job`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unit {
    pub job: u64,
    pub index: usize,
}

/// Lifecycle of one configuration slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotState {
    Pending,
    Running,
    Done {
        /// Served from the result cache instead of simulated.
        cached: bool,
        /// Restored from the job checkpoint at server start.
        restored: bool,
    },
    /// Supervision exhausted its retries; the message is the
    /// [`flexsim::SweepError`] rendering.
    Failed(String),
}

/// One submitted job.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub configs: Vec<RunConfig>,
    pub slots: Vec<SlotState>,
    /// JSON-lines results/checkpoint file (core `checkpoint_line` format).
    pub ckpt: PathBuf,
    /// Slots restored from the checkpoint at recovery.
    pub restored: usize,
    /// Checkpoint lines lost to corruption at recovery (surfaced in the
    /// job status; nonzero means the file was damaged at rest).
    pub ckpt_skipped: usize,
    /// Whether recovery found a torn final line (killed mid-append).
    pub torn_tail: bool,
    /// Set with `torn_tail`: the next append must start with a newline so
    /// it does not concatenate onto the torn fragment.
    pub(crate) needs_newline_guard: bool,
}

impl Job {
    /// (pending, running, done, cached, restored, failed) slot counts.
    pub fn tally(&self) -> (usize, usize, usize, usize, usize, usize) {
        let (mut p, mut r, mut d, mut c, mut re, mut f) = (0, 0, 0, 0, 0, 0);
        for s in &self.slots {
            match s {
                SlotState::Pending => p += 1,
                SlotState::Running => r += 1,
                SlotState::Done { cached, restored } => {
                    d += 1;
                    c += usize::from(*cached);
                    re += usize::from(*restored);
                }
                SlotState::Failed(_) => f += 1,
            }
        }
        (p, r, d, c, re, f)
    }

    /// No slot is pending or running.
    pub fn is_settled(&self) -> bool {
        let (p, r, ..) = self.tally();
        p == 0 && r == 0
    }
}

/// Mutex-guarded portion of the server state.
#[derive(Default)]
pub struct Inner {
    pub jobs: BTreeMap<u64, Job>,
    pub queues: Vec<VecDeque<Unit>>,
    pub next_job_id: u64,
}

/// Counters reported by `GET /stats`.
#[derive(Default)]
pub struct Stats {
    /// Simulations actually executed (cache hits and restores excluded).
    pub sims_run: AtomicU64,
    pub jobs_submitted: AtomicU64,
    pub jobs_resumed: AtomicU64,
    pub jobs_completed: AtomicU64,
}

/// Everything the HTTP threads and the workers share.
pub struct Shared {
    pub inner: Mutex<Inner>,
    pub work_cv: Condvar,
    /// Graceful-shutdown latch: workers finish their in-flight unit and
    /// exit; queued units stay in the job checkpoints' debt for the next
    /// server lifetime.
    pub shutdown: AtomicBool,
    pub stats: Stats,
    pub sweep: SweepOptions,
    pub cache: ResultCache,
}

impl Shared {
    pub fn new(workers: usize, sweep: SweepOptions, cache: ResultCache) -> Arc<Shared> {
        let inner = Inner {
            jobs: BTreeMap::new(),
            queues: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
            next_job_id: 1,
        };
        Arc::new(Shared {
            inner: Mutex::new(inner),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            sweep,
            cache,
        })
    }

    /// Deals every `Pending` slot of `job_id` round-robin across the
    /// worker queues and wakes the pool. Caller holds the lock.
    pub fn enqueue_pending(inner: &mut Inner, job_id: u64) {
        let Some(job) = inner.jobs.get(&job_id) else {
            return;
        };
        let units: Vec<Unit> = job
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == SlotState::Pending)
            .map(|(index, _)| Unit { job: job_id, index })
            .collect();
        let n = inner.queues.len();
        for (k, unit) in units.into_iter().enumerate() {
            inner.queues[k % n].push_back(unit);
        }
    }

    /// Pops work for `worker`: own deque from the back (LIFO keeps a
    /// worker on the job it was dealt), else steal from the front of the
    /// longest sibling queue (FIFO takes the oldest backlog).
    fn next_unit(inner: &mut Inner, worker: usize) -> Option<Unit> {
        if let Some(u) = inner.queues[worker].pop_back() {
            return Some(u);
        }
        let victim = (0..inner.queues.len())
            .filter(|&q| q != worker)
            .max_by_key(|&q| inner.queues[q].len())?;
        inner.queues[victim].pop_front()
    }

    /// The worker loop. Exits when the shutdown latch rises; the unit in
    /// flight at that moment is finished and checkpointed first.
    pub fn worker_loop(self: &Arc<Shared>, worker: usize) {
        loop {
            let unit = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(u) = Self::next_unit(&mut inner, worker) {
                        break u;
                    }
                    let (guard, _) = self
                        .work_cv
                        .wait_timeout(inner, Duration::from_millis(200))
                        .unwrap();
                    inner = guard;
                }
            };
            self.execute_unit(unit);
        }
    }

    /// Runs one unit to completion: cache lookup, supervised run on a
    /// miss, checkpoint append, cache store, slot update.
    fn execute_unit(self: &Arc<Shared>, unit: Unit) {
        let (cfg, ckpt) = {
            let mut inner = self.inner.lock().unwrap();
            let Some(job) = inner.jobs.get_mut(&unit.job) else {
                return;
            };
            job.slots[unit.index] = SlotState::Running;
            (job.configs[unit.index].clone(), job.ckpt.clone())
        };

        let (outcome, cached) = match self.cache.lookup(&cfg) {
            Some(hit) => (Ok(hit), true),
            None => {
                self.stats.sims_run.fetch_add(1, Ordering::Relaxed);
                (run_supervised(&cfg, &self.sweep), false)
            }
        };

        if let Ok(result) = &outcome {
            if !cached {
                // Best-effort: a failed store only costs a future re-run.
                let _ = self.cache.store(&cfg, result);
            }
            let line = checkpoint_line(unit.index, &cfg.label(), result);
            // Appends are serialized under the state lock (several workers
            // may finish units of the same job concurrently) and carry the
            // newline guard after a torn-tail restore.
            let mut inner = self.inner.lock().unwrap();
            if let Some(job) = inner.jobs.get_mut(&unit.job) {
                let guard = std::mem::take(&mut job.needs_newline_guard);
                let appended = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&ckpt)
                    .and_then(|mut f| {
                        if guard {
                            f.write_all(b"\n")?;
                        }
                        f.write_all(line.as_bytes())?;
                        f.write_all(b"\n")
                    });
                if let Err(e) = appended {
                    eprintln!(
                        "campaign: checkpoint append failed for job {}: {e}",
                        unit.job
                    );
                    job.needs_newline_guard = guard;
                }
            }
            drop(inner);
        }

        let mut inner = self.inner.lock().unwrap();
        if let Some(job) = inner.jobs.get_mut(&unit.job) {
            job.slots[unit.index] = match &outcome {
                Ok(_) => SlotState::Done {
                    cached,
                    restored: false,
                },
                Err(e) => SlotState::Failed(e.to_string()),
            };
            if job.is_settled() {
                self.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Raises the shutdown latch and wakes every waiter.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(id: u64, slots: Vec<SlotState>) -> Job {
        Job {
            id,
            configs: vec![RunConfig::small_default(); slots.len()],
            slots,
            ckpt: PathBuf::from("/nonexistent"),
            restored: 0,
            ckpt_skipped: 0,
            torn_tail: false,
            needs_newline_guard: false,
        }
    }

    #[test]
    fn units_deal_round_robin_and_steal_from_longest() {
        let mut inner = Inner {
            queues: vec![VecDeque::new(), VecDeque::new(), VecDeque::new()],
            next_job_id: 2,
            ..Inner::default()
        };
        inner
            .jobs
            .insert(1, dummy_job(1, vec![SlotState::Pending; 7]));
        Shared::enqueue_pending(&mut inner, 1);
        assert_eq!(inner.queues[0].len(), 3);
        assert_eq!(inner.queues[1].len(), 2);
        assert_eq!(inner.queues[2].len(), 2);

        // Own deque first, LIFO.
        let u = Shared::next_unit(&mut inner, 0).unwrap();
        assert_eq!(u.index, 6); // queue 0 held indices 0, 3, 6
                                // Drain own, then steal FIFO from the longest sibling.
        Shared::next_unit(&mut inner, 0).unwrap();
        Shared::next_unit(&mut inner, 0).unwrap();
        let stolen = Shared::next_unit(&mut inner, 0).unwrap();
        // Queues 1 and 2 tie on length; `max_by_key` keeps the last, so
        // the steal takes the oldest unit of queue 2 (indices 2, 5).
        assert_eq!(stolen.index, 2);
    }

    #[test]
    fn tally_and_settled() {
        let job = dummy_job(
            1,
            vec![
                SlotState::Pending,
                SlotState::Running,
                SlotState::Done {
                    cached: true,
                    restored: false,
                },
                SlotState::Done {
                    cached: false,
                    restored: true,
                },
                SlotState::Failed("boom".into()),
            ],
        );
        assert_eq!(job.tally(), (1, 1, 2, 1, 1, 1));
        assert!(!job.is_settled());
        let done = dummy_job(
            2,
            vec![
                SlotState::Failed("x".into()),
                SlotState::Done {
                    cached: false,
                    restored: false,
                },
            ],
        );
        assert!(done.is_settled());
    }
}
