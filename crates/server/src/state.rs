//! Shared server state: the job table, the work-stealing queues, and the
//! worker loop that drains them through the supervised runner.
//!
//! Each worker owns a deque; units are dealt round-robin at submission,
//! a worker pops its own deque LIFO and steals FIFO from the longest
//! sibling when empty. All deques sit behind one mutex — the unit of
//! work is a whole simulation (milliseconds to minutes), so queue
//! contention is irrelevant and the single lock keeps the stealing logic
//! trivially correct.
//!
//! Results are never kept in memory: a completed unit is appended to its
//! job's checkpoint file as a CRC-framed [`checkpoint_line`] via the
//! durable append path, so `GET /jobs/:id/results` is a file read and a
//! restarted server resumes with the core [`flexsim::restore_checkpoint`]
//! — the same machinery, digest-exact.
//!
//! # Multi-process fleet
//!
//! Any number of server processes may share one data dir. Before running
//! a unit, a worker must win the per-config lease (see [`crate::lease`]);
//! losing means a live sibling owns the config, and the slot returns to
//! `Pending` until the reconciler either adopts the sibling's checkpoint
//! record or reclaims the expired lease. After *winning* a lease the
//! worker re-reads the checkpoint before simulating — a record appended
//! by a dead former owner is adopted, never recomputed — and the shared
//! content-addressed cache is the final dedup guard.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use flexsim::jsonio::{durable, frame_record, scan_records, Json};
use flexsim::{
    checkpoint_line, checkpoint_status_line, decode_result, run_supervised_cancellable,
    CancelToken, RunConfig, RunResult, SweepError, SweepOptions,
};

use crate::cache::ResultCache;
use crate::lease::{HeldLease, LeaseDir};

/// One schedulable piece of work: configuration `index` of job `job`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unit {
    pub job: u64,
    pub index: usize,
}

/// Lifecycle of one configuration slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// Not scheduled in this process (a sibling may own the lease).
    Pending,
    /// Dealt into this process's worker queues.
    Queued,
    Running,
    Done {
        /// Served from the result cache instead of simulated.
        cached: bool,
        /// Restored from the job checkpoint (at start or by adopting a
        /// sibling's record).
        restored: bool,
    },
    /// Supervision exhausted its retries; the message is the
    /// [`flexsim::SweepError`] rendering.
    Failed(String),
    /// Terminally cancelled; `timed_out` distinguishes a deadline expiry
    /// from an explicit cancel request.
    Cancelled {
        timed_out: bool,
    },
}

/// Per-job slot counts for status reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    pub pending: usize,
    pub running: usize,
    pub done: usize,
    pub cached: usize,
    pub restored: usize,
    pub failed: usize,
    pub cancelled: usize,
}

/// One submitted job.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub configs: Vec<RunConfig>,
    pub slots: Vec<SlotState>,
    /// JSON-lines results/checkpoint file (framed core `checkpoint_line`
    /// records).
    pub ckpt: PathBuf,
    /// Slots restored from the checkpoint at recovery.
    pub restored: usize,
    /// Checkpoint lines lost to corruption at recovery (surfaced in the
    /// job status; nonzero means the file was damaged at rest).
    pub ckpt_skipped: usize,
    /// Framed checkpoint lines whose CRC failed at recovery — detected
    /// (and quarantined) corruption.
    pub ckpt_corrupt: usize,
    /// Whether recovery found a torn final line (killed mid-append).
    pub torn_tail: bool,
    /// Cooperative cancellation shared by every run of this job.
    pub cancel: CancelToken,
    /// Per-config wall-clock budget (from the grid's `timeout_ms`).
    pub timeout: Option<Duration>,
    /// Stale leases this process broke while working the job — evidence
    /// of reclaimed work from dead siblings, surfaced in `/jobs/:id`.
    pub reclaimed_leases: u64,
}

impl Job {
    /// Slot counts for status reporting. `Queued` counts as pending —
    /// queue residency is a process-local scheduling detail.
    pub fn tally(&self) -> Tally {
        let mut t = Tally::default();
        for s in &self.slots {
            match s {
                SlotState::Pending | SlotState::Queued => t.pending += 1,
                SlotState::Running => t.running += 1,
                SlotState::Done { cached, restored } => {
                    t.done += 1;
                    t.cached += usize::from(*cached);
                    t.restored += usize::from(*restored);
                }
                SlotState::Failed(_) => t.failed += 1,
                SlotState::Cancelled { .. } => t.cancelled += 1,
            }
        }
        t
    }

    /// No slot is pending, queued, or running.
    pub fn is_settled(&self) -> bool {
        let t = self.tally();
        t.pending == 0 && t.running == 0
    }
}

/// Mutex-guarded portion of the server state.
#[derive(Default)]
pub struct Inner {
    pub jobs: BTreeMap<u64, Job>,
    pub queues: Vec<VecDeque<Unit>>,
    pub next_job_id: u64,
}

/// Counters reported by `GET /stats` (per process — each fleet member
/// reports its own share of the work).
#[derive(Default)]
pub struct Stats {
    /// Simulations actually executed (cache hits and restores excluded).
    pub sims_run: AtomicU64,
    pub jobs_submitted: AtomicU64,
    pub jobs_resumed: AtomicU64,
    pub jobs_completed: AtomicU64,
    /// Stale leases broken (work reclaimed from dead siblings).
    pub leases_reclaimed: AtomicU64,
}

/// Everything the HTTP threads and the workers share.
pub struct Shared {
    pub inner: Mutex<Inner>,
    pub work_cv: Condvar,
    /// Graceful-shutdown latch: workers finish their in-flight unit and
    /// exit; queued units stay in the job checkpoints' debt for the next
    /// server lifetime.
    pub shutdown: AtomicBool,
    pub stats: Stats,
    pub sweep: SweepOptions,
    pub cache: ResultCache,
    pub leases: LeaseDir,
    /// Leases currently held by this process, renewed by the heartbeat
    /// thread.
    pub held: Mutex<HashMap<(u64, usize), HeldLease>>,
}

impl Shared {
    pub fn new(
        workers: usize,
        sweep: SweepOptions,
        cache: ResultCache,
        leases: LeaseDir,
    ) -> Arc<Shared> {
        let inner = Inner {
            jobs: BTreeMap::new(),
            queues: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
            next_job_id: 1,
        };
        Arc::new(Shared {
            inner: Mutex::new(inner),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            sweep,
            cache,
            leases,
            held: Mutex::new(HashMap::new()),
        })
    }

    /// Deals every `Pending` slot of `job_id` round-robin across the
    /// worker queues (marking them `Queued`) and wakes the pool. Caller
    /// holds the lock.
    pub fn enqueue_pending(inner: &mut Inner, job_id: u64) {
        let Some(job) = inner.jobs.get_mut(&job_id) else {
            return;
        };
        let mut units = Vec::new();
        for (index, slot) in job.slots.iter_mut().enumerate() {
            if *slot == SlotState::Pending {
                *slot = SlotState::Queued;
                units.push(Unit { job: job_id, index });
            }
        }
        let n = inner.queues.len();
        for (k, unit) in units.into_iter().enumerate() {
            inner.queues[k % n].push_back(unit);
        }
    }

    /// Pops work for `worker`: own deque from the back (LIFO keeps a
    /// worker on the job it was dealt), else steal from the front of the
    /// longest sibling queue (FIFO takes the oldest backlog).
    fn next_unit(inner: &mut Inner, worker: usize) -> Option<Unit> {
        if let Some(u) = inner.queues[worker].pop_back() {
            return Some(u);
        }
        let victim = (0..inner.queues.len())
            .filter(|&q| q != worker)
            .max_by_key(|&q| inner.queues[q].len())?;
        inner.queues[victim].pop_front()
    }

    /// The worker loop. Exits when the shutdown latch rises; the unit in
    /// flight at that moment is finished and checkpointed first.
    pub fn worker_loop(self: &Arc<Shared>, worker: usize) {
        loop {
            let unit = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(u) = Self::next_unit(&mut inner, worker) {
                        break u;
                    }
                    let (guard, _) = self
                        .work_cv
                        .wait_timeout(inner, Duration::from_millis(200))
                        .unwrap();
                    inner = guard;
                }
            };
            self.execute_unit(unit);
        }
    }

    /// Appends one framed record line to `ckpt` under the state lock
    /// (the durable single-buffer `O_APPEND` write is what keeps sibling
    /// *processes* from tearing each other; the lock serializes this
    /// process's own workers).
    fn append_record(job: u64, ckpt: &Path, payload: &str) {
        if let Err(e) = durable::append_line(ckpt, &frame_record(payload)) {
            eprintln!("campaign: checkpoint append failed for job {job}: {e}");
        }
    }

    /// Whether the shared checkpoint already holds a record for
    /// `(job, index)` — consulted after winning a lease, so work a dead
    /// former owner completed is adopted instead of recomputed.
    fn checkpoint_record_for(ckpt: &Path, index: usize) -> Option<Result<RunResult, bool>> {
        let text = std::fs::read_to_string(ckpt).ok()?;
        let mut found = None;
        for (_, v) in scan_records(&text).values {
            if v.get("index").and_then(Json::as_u64) != Some(index as u64) {
                continue;
            }
            if let Some(status) = v.get("status").and_then(Json::as_str) {
                found = Some(Err(status == "timed_out"));
            } else if let Some(r) = v.get("result").and_then(|r| decode_result(r).ok()) {
                found = Some(Ok(r));
            }
        }
        found
    }

    /// Runs one unit to completion: lease claim, checkpoint adoption,
    /// cache lookup, supervised run on a miss, durable checkpoint append,
    /// cache store, slot update.
    fn execute_unit(self: &Arc<Shared>, unit: Unit) {
        let (cfg, ckpt, cancel, timeout) = {
            let mut inner = self.inner.lock().unwrap();
            let Some(job) = inner.jobs.get_mut(&unit.job) else {
                return;
            };
            // Only Queued units are runnable; the reconciler may have
            // settled this slot (sibling result, cancellation) while the
            // unit sat in the queue.
            if job.slots[unit.index] != SlotState::Queued {
                return;
            }
            job.slots[unit.index] = SlotState::Running;
            (
                job.configs[unit.index].clone(),
                job.ckpt.clone(),
                job.cancel.clone(),
                job.timeout,
            )
        };

        // Cancelled while queued: persist the terminal decision now
        // (unless some fleet member already did).
        if cancel.is_cancelled() {
            let persist = Self::checkpoint_record_for(&ckpt, unit.index).is_none();
            self.finish_unit(unit, &cfg, &ckpt, Err(false), false, persist);
            return;
        }

        // Claim the per-config lease; a live sibling owning it means the
        // config is theirs — the reconciler will adopt their record.
        let acquired = match self.leases.try_acquire(unit.job, unit.index) {
            Ok(Some(a)) => a,
            Ok(None) => {
                let mut inner = self.inner.lock().unwrap();
                if let Some(job) = inner.jobs.get_mut(&unit.job) {
                    if job.slots[unit.index] == SlotState::Running {
                        job.slots[unit.index] = SlotState::Pending;
                    }
                }
                return;
            }
            Err(e) => {
                eprintln!(
                    "campaign: lease acquire failed for job {} cfg {}: {e}",
                    unit.job, unit.index
                );
                let mut inner = self.inner.lock().unwrap();
                if let Some(job) = inner.jobs.get_mut(&unit.job) {
                    if job.slots[unit.index] == SlotState::Running {
                        job.slots[unit.index] = SlotState::Pending;
                    }
                }
                return;
            }
        };
        if acquired.reclaimed {
            self.stats.leases_reclaimed.fetch_add(1, Ordering::Relaxed);
            let mut inner = self.inner.lock().unwrap();
            if let Some(job) = inner.jobs.get_mut(&unit.job) {
                job.reclaimed_leases += 1;
            }
        }
        self.held
            .lock()
            .unwrap()
            .insert((unit.job, unit.index), acquired.lease);

        // With the lease won, re-read the shared checkpoint: a dead
        // former owner may have finished this config before dying. Its
        // record is adopted, never recomputed — this re-check is what
        // makes lease reclamation duplicate-free.
        let (verdict, cached, persist) = match Self::checkpoint_record_for(&ckpt, unit.index) {
            Some(Ok(r)) => (Ok(r), false, false),
            Some(Err(timed_out)) => (Err(timed_out), false, false),
            None => match self.cache.lookup(&cfg) {
                Some(hit) => (Ok(hit), true, true),
                None => {
                    self.stats.sims_run.fetch_add(1, Ordering::Relaxed);
                    match run_supervised_cancellable(&cfg, &self.sweep, &cancel, timeout) {
                        Ok(r) => {
                            // Best-effort: a failed store only costs a
                            // future re-run.
                            let _ = self.cache.store(&cfg, &r);
                            (Ok(r), false, true)
                        }
                        Err(SweepError::Cancelled { timed_out, .. }) => {
                            (Err(timed_out), false, true)
                        }
                        Err(e) => {
                            // Retries exhausted: terminal failure (kept
                            // in memory only — a restart retries it).
                            self.release_lease(unit);
                            let mut inner = self.inner.lock().unwrap();
                            if let Some(job) = inner.jobs.get_mut(&unit.job) {
                                job.slots[unit.index] = SlotState::Failed(e.to_string());
                                if job.is_settled() {
                                    self.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            return;
                        }
                    }
                }
            },
        };

        // The append happens before the lease release: the lease holder
        // is the sole writer for this index, so release-after-append
        // means no sibling can interleave a duplicate record.
        self.finish_unit(unit, &cfg, &ckpt, verdict, cached, persist);
        self.release_lease(unit);
    }

    fn release_lease(self: &Arc<Shared>, unit: Unit) {
        if let Some(held) = self.held.lock().unwrap().remove(&(unit.job, unit.index)) {
            self.leases.release(held);
        }
    }

    /// Persists (when `persist`) and records a terminal verdict for one
    /// unit: `Ok(result)` appends a result record, `Err(timed_out)` a
    /// status record. Adopted-from-disk verdicts pass `persist: false` —
    /// their record already exists.
    fn finish_unit(
        self: &Arc<Shared>,
        unit: Unit,
        cfg: &RunConfig,
        ckpt: &Path,
        verdict: Result<RunResult, bool>,
        cached: bool,
        persist: bool,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let Some(job) = inner.jobs.get_mut(&unit.job) else {
            return;
        };
        match &verdict {
            Ok(result) => {
                if persist {
                    Self::append_record(
                        unit.job,
                        ckpt,
                        &checkpoint_line(unit.index, &cfg.label(), result),
                    );
                }
                job.slots[unit.index] = SlotState::Done {
                    cached,
                    restored: !persist,
                };
            }
            Err(timed_out) => {
                if persist {
                    Self::append_record(
                        unit.job,
                        ckpt,
                        &checkpoint_status_line(unit.index, &cfg.label(), *timed_out),
                    );
                }
                job.slots[unit.index] = SlotState::Cancelled {
                    timed_out: *timed_out,
                };
            }
        }
        if job.is_settled() {
            self.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reconciles in-memory jobs against the shared checkpoint files:
    /// adopts records appended by sibling processes, applies durable
    /// cancellation markers, and re-queues `Pending` slots whose lease is
    /// free (expired or never taken). Called periodically by the fleet
    /// scanner thread.
    pub fn reconcile(self: &Arc<Shared>) {
        let jobs: Vec<(u64, PathBuf)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .jobs
                .iter()
                .filter(|(_, j)| !j.is_settled())
                .map(|(id, j)| (*id, j.ckpt.clone()))
                .collect()
        };
        let mut woke_work = false;
        for (id, ckpt) in jobs {
            // Read the checkpoint outside the lock; adoption below
            // re-checks slot states under the lock.
            let scan = std::fs::read_to_string(&ckpt)
                .map(|text| scan_records(&text))
                .ok();
            let cancel_marker = ckpt.with_extension("cancel").exists();
            let mut inner = self.inner.lock().unwrap();
            let Some(job) = inner.jobs.get_mut(&id) else {
                continue;
            };
            if cancel_marker && !job.cancel.is_cancelled() {
                job.cancel.cancel();
            }
            if let Some(scan) = scan {
                for (_, v) in &scan.values {
                    let Some(index) = v.get("index").and_then(Json::as_u64) else {
                        continue;
                    };
                    let index = index as usize;
                    if index >= job.slots.len() {
                        continue;
                    }
                    if !matches!(job.slots[index], SlotState::Pending | SlotState::Queued) {
                        continue;
                    }
                    if let Some(status) = v.get("status").and_then(Json::as_str) {
                        job.slots[index] = SlotState::Cancelled {
                            timed_out: status == "timed_out",
                        };
                    } else if v.get("result").is_some() {
                        job.slots[index] = SlotState::Done {
                            cached: false,
                            restored: true,
                        };
                    }
                }
            }
            if job.cancel.is_cancelled() {
                // Settle every not-yet-running slot as cancelled. No
                // status append here: the endpoint that raised the marker
                // persisted lines for its own slots, and duplicated lines
                // from every fleet member would only inflate accounting.
                for slot in &mut job.slots {
                    if matches!(*slot, SlotState::Pending | SlotState::Queued) {
                        *slot = SlotState::Cancelled { timed_out: false };
                    }
                }
            }
            let was_settled = job.is_settled();
            // Re-queue Pending slots (lease lost to a live sibling, or
            // never scheduled here): execute_unit re-arbitrates with the
            // lease, so the worst case is a cheap failed acquire.
            Self::enqueue_pending(&mut inner, id);
            let job = inner.jobs.get(&id).unwrap();
            woke_work |= job.slots.contains(&SlotState::Queued);
            if !was_settled && job.is_settled() {
                self.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if woke_work {
            self.work_cv.notify_all();
        }
    }

    /// Renews every lease this process holds. Called by the heartbeat
    /// thread several times per expiry window.
    pub fn heartbeat(self: &Arc<Shared>) {
        let mut held = self.held.lock().unwrap();
        for lease in held.values_mut() {
            let _ = self.leases.renew(lease);
        }
    }

    /// Raises the shutdown latch and wakes every waiter.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(id: u64, slots: Vec<SlotState>) -> Job {
        Job {
            id,
            configs: vec![RunConfig::small_default(); slots.len()],
            slots,
            ckpt: PathBuf::from("/nonexistent"),
            restored: 0,
            ckpt_skipped: 0,
            ckpt_corrupt: 0,
            torn_tail: false,
            cancel: CancelToken::new(),
            timeout: None,
            reclaimed_leases: 0,
        }
    }

    #[test]
    fn units_deal_round_robin_and_steal_from_longest() {
        let mut inner = Inner {
            queues: vec![VecDeque::new(), VecDeque::new(), VecDeque::new()],
            next_job_id: 2,
            ..Inner::default()
        };
        inner
            .jobs
            .insert(1, dummy_job(1, vec![SlotState::Pending; 7]));
        Shared::enqueue_pending(&mut inner, 1);
        assert!(inner.jobs[&1].slots.iter().all(|s| *s == SlotState::Queued));
        assert_eq!(inner.queues[0].len(), 3);
        assert_eq!(inner.queues[1].len(), 2);
        assert_eq!(inner.queues[2].len(), 2);

        // Own deque first, LIFO.
        let u = Shared::next_unit(&mut inner, 0).unwrap();
        assert_eq!(u.index, 6); // queue 0 held indices 0, 3, 6
                                // Drain own, then steal FIFO from the longest sibling.
        Shared::next_unit(&mut inner, 0).unwrap();
        Shared::next_unit(&mut inner, 0).unwrap();
        let stolen = Shared::next_unit(&mut inner, 0).unwrap();
        // Queues 1 and 2 tie on length; `max_by_key` keeps the last, so
        // the steal takes the oldest unit of queue 2 (indices 2, 5).
        assert_eq!(stolen.index, 2);
    }

    #[test]
    fn tally_and_settled() {
        let job = dummy_job(
            1,
            vec![
                SlotState::Pending,
                SlotState::Queued,
                SlotState::Running,
                SlotState::Done {
                    cached: true,
                    restored: false,
                },
                SlotState::Done {
                    cached: false,
                    restored: true,
                },
                SlotState::Failed("boom".into()),
                SlotState::Cancelled { timed_out: true },
            ],
        );
        assert_eq!(
            job.tally(),
            Tally {
                pending: 2,
                running: 1,
                done: 2,
                cached: 1,
                restored: 1,
                failed: 1,
                cancelled: 1,
            }
        );
        assert!(!job.is_settled());
        let done = dummy_job(
            2,
            vec![
                SlotState::Failed("x".into()),
                SlotState::Done {
                    cached: false,
                    restored: false,
                },
                SlotState::Cancelled { timed_out: false },
            ],
        );
        assert!(done.is_settled());
    }
}
