//! SIGINT latch without a libc dependency.
//!
//! The serve loop polls [`triggered`] between accepts; the handler only
//! flips an `AtomicBool`, which is async-signal-safe. On non-Unix targets
//! the latch exists but never fires (Ctrl-C then terminates the process
//! the default way, and `POST /shutdown` remains available).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler (idempotent).
pub fn install() {
    imp::install();
}

/// Whether SIGINT has been received since [`install`].
pub fn triggered() -> bool {
    SIGINT_SEEN.load(Ordering::SeqCst)
}

/// Raises the latch programmatically (`POST /shutdown` and tests share
/// the graceful path with the signal).
pub fn trigger() {
    SIGINT_SEEN.store(true, Ordering::SeqCst);
}

/// Clears the latch — lets one process host several serve lifetimes
/// (tests, `--smoke`).
pub fn reset() {
    SIGINT_SEEN.store(false, Ordering::SeqCst);
}
