//! Campaign server: simulation-as-a-service over the supervised sweep
//! engine.
//!
//! The repo's sweeps are library calls; this crate puts an HTTP job API
//! in front of them so long simulation campaigns can be submitted,
//! monitored, shared, and resumed. Std-only by design — the build
//! environment is offline, so the HTTP layer, the JSON, and the signal
//! handling are all hand-rolled on `std`.
//!
//! * [`http`] — minimal HTTP/1.1 server- and client-side plumbing.
//! * [`grid`] — sweep-grid submissions (`base × seeds × loads`).
//! * [`cache`] — content-addressed result cache keyed on canonical
//!   config digests and [`flexsim::ENGINE_VERSION`].
//! * [`lease`] — per-config lease files arbitrating ownership across
//!   fleet members sharing one data dir.
//! * [`state`] — job table, work-stealing worker pool, per-job
//!   checkpoint appends in the core sweep format.
//! * [`server`] — [`CampaignServer`]: endpoints, crash recovery,
//!   fleet reconciliation, graceful shutdown.
//!
//! Results served over the API are digest-identical to direct
//! [`flexsim::sweep_supervised`] calls on the same grid: the workers run
//! each configuration through the very same supervised single-config
//! path ([`flexsim::run_supervised`]) and persist it with the same
//! checkpoint codec. The integration suite and `repro serve --smoke`
//! assert this end to end.

pub mod cache;
pub mod grid;
pub mod http;
pub mod lease;
pub mod server;
pub mod signal;
pub mod state;

pub use cache::{config_key, ResultCache};
pub use grid::SweepGrid;
pub use http::{http_request, http_request_full};
pub use lease::LeaseDir;
pub use server::{CampaignServer, ServerOptions};
