//! Content-addressed result cache.
//!
//! Every completed configuration is stored under a key derived from its
//! *canonical digest*: the full [`config_to_json`] rendering (seed and
//! fault plan included) with `transfer_threads` and `shards` normalized
//! to 1 — the engine is digest-identical at any thread or shard count, so
//! neither knob may fragment the cache — concatenated with
//! [`flexsim::ENGINE_VERSION`].
//! Resubmitting any previously run configuration is answered from disk
//! without simulating; an engine-semantics bump invalidates everything
//! at once by changing every key.
//!
//! Entries carry the full canonical config text and are compared on
//! lookup, so a 128-bit hash collision degrades to a miss, never to a
//! wrong result.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use flexsim::forensics::config_to_json;
use flexsim::jsonio::{obj, parse, Json};
use flexsim::{decode_result, encode_result, RunConfig, RunResult, ENGINE_VERSION};

/// FNV-1a over `bytes`, seeded with `basis`.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical config text a cache key digests: config JSON with
/// `transfer_threads` and `shards` pinned to 1 and `detection` pinned to
/// snapshot, plus the engine version. All three knobs are digest-neutral
/// (parallelism controls and the incremental detector produce
/// byte-identical results), so leaving any in the key would fragment the
/// cache with duplicate results.
pub fn canonical_config(cfg: &RunConfig) -> String {
    let mut c = cfg.clone();
    c.transfer_threads = 1;
    c.shards = 1;
    c.detection = flexsim::DetectionMode::Snapshot;
    format!("{}\u{0}{ENGINE_VERSION}", config_to_json(&c))
}

/// 128-bit content key as 32 hex chars (two FNV-1a streams with distinct
/// bases; collisions are additionally guarded by full-text comparison).
pub fn config_key(cfg: &RunConfig) -> String {
    let canon = canonical_config(cfg);
    let h1 = fnv1a(canon.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let h2 = fnv1a(canon.as_bytes(), 0x6c62_272e_07bb_0142);
    format!("{h1:016x}{h2:016x}")
}

/// A directory of cached results with hit/miss counters.
pub struct ResultCache {
    dir: PathBuf,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir: dir.as_ref().to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks up a configuration. `Some` counts as a hit, `None` (absent,
    /// undecodable, stale engine version, or canonical-text mismatch)
    /// as a miss.
    pub fn lookup(&self, cfg: &RunConfig) -> Option<RunResult> {
        let key = config_key(cfg);
        let canon = canonical_config(cfg);
        let hit = (|| {
            let text = fs::read_to_string(self.path_for(&key)).ok()?;
            let v = parse(&text).ok()?;
            if v.get("config").and_then(Json::as_str) != Some(canon.as_str()) {
                return None;
            }
            decode_result(v.get("result")?).ok()
        })();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores a result through the durable atomic-write path (temp file,
    /// fsync, rename, directory fsync), so readers — in this process or a
    /// sibling sharing the cache dir — never observe a half-written
    /// entry and a crash never leaves one at rest. A same-key race ends
    /// with one winner and identical content either way (the engine is
    /// deterministic).
    pub fn store(&self, cfg: &RunConfig, result: &RunResult) -> io::Result<()> {
        let key = config_key(cfg);
        let entry = obj(vec![
            ("key", Json::Str(key.clone())),
            ("config", Json::Str(canonical_config(cfg))),
            ("label", Json::Str(cfg.label())),
            ("result", encode_result(result)),
        ]);
        flexsim::jsonio::durable::write_atomic(&self.path_for(&key), entry.to_string().as_bytes())
    }

    /// Number of entries on disk.
    pub fn entries(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().map(|x| x == "json").unwrap_or(false))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsim::run;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icn-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_cfg() -> RunConfig {
        let mut c = RunConfig::small_default();
        c.warmup = 100;
        c.measure = 300;
        c.load = 0.2;
        c
    }

    #[test]
    fn key_ignores_transfer_threads_but_not_seed() {
        let a = quick_cfg();
        let mut b = a.clone();
        b.transfer_threads = 4;
        assert_eq!(
            config_key(&a),
            config_key(&b),
            "thread count must not fragment"
        );
        let mut s = a.clone();
        s.shards = 8;
        s.transfer_threads = 2;
        assert_eq!(
            config_key(&a),
            config_key(&s),
            "shard count must not fragment"
        );
        let mut c = a.clone();
        c.seed ^= 1;
        assert_ne!(
            config_key(&a),
            config_key(&c),
            "seed is part of the identity"
        );
        let mut d = a.clone();
        d.faults.link_outage(0, 10, 20);
        assert_ne!(
            config_key(&a),
            config_key(&d),
            "fault plan is part of the identity"
        );
    }

    #[test]
    fn store_then_lookup_is_digest_exact() {
        let cache = ResultCache::open(tmp_dir("roundtrip")).unwrap();
        let cfg = quick_cfg();
        let r = run(&cfg);
        assert!(cache.lookup(&cfg).is_none(), "cold cache misses");
        cache.store(&cfg, &r).unwrap();
        let back = cache.lookup(&cfg).expect("entry should hit");
        assert_eq!(back.digest(), r.digest());
        assert_eq!(cache.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn corrupt_entry_degrades_to_miss() {
        let cache = ResultCache::open(tmp_dir("corrupt")).unwrap();
        let cfg = quick_cfg();
        let r = run(&cfg);
        cache.store(&cfg, &r).unwrap();
        fs::write(cache.path_for(&config_key(&cfg)), "{\"half\":").unwrap();
        assert!(cache.lookup(&cfg).is_none());
    }
}
