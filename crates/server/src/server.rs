//! The campaign server: HTTP front end, job recovery, and the serve loop.
//!
//! # Endpoints
//!
//! | Method | Path                 | Meaning                                        |
//! |--------|----------------------|------------------------------------------------|
//! | POST   | `/jobs`              | Submit a sweep grid; returns `{"id", "configs"}` |
//! | GET    | `/jobs/:id`          | Job status with per-config progress            |
//! | GET    | `/jobs/:id/results`  | Completed results as JSON lines (partial while running; `X-Job-Complete` header) |
//! | POST   | `/jobs/:id/cancel`   | Cancel a job (durable, fleet-wide)             |
//! | GET    | `/stats`             | Engine version, worker/job/cache counters      |
//! | POST   | `/shutdown`          | Graceful shutdown (in-flight configs finish)   |
//! | GET    | `/incidents`         | Deadlock-incident index                        |
//! | GET    | `/incidents/:n`      | Full incident record (JSON)                    |
//! | GET    | `/incidents/:n/dot`  | Knot-highlighted Graphviz rendering            |
//!
//! # Durability
//!
//! Everything lives under `data_dir`: `jobs/job-<id>.json` (the canonical
//! submitted grid, claimed cross-process with an exclusive create),
//! `jobs/job-<id>.ckpt.jsonl` (CRC-framed completed results in the core
//! checkpoint format — this file *is* the results stream),
//! `jobs/job-<id>.ckpt.cancel` (durable cancellation marker), `leases/`
//! (per-config ownership), and `cache/` (content-addressed results). A
//! killed server recovers on the next [`CampaignServer::bind`]: grids are
//! re-expanded, checkpoints restored with the core
//! [`flexsim::restore_checkpoint`] (digest-exact, torn final lines
//! tolerated and surfaced, corrupt frames quarantined), and unfinished
//! configurations re-enter the queues.
//!
//! # Fleet
//!
//! Any number of servers may share one `data_dir`. A scanner thread
//! discovers jobs submitted through siblings and reconciles checkpoint
//! progress; per-config leases (renewed by a heartbeat thread) arbitrate
//! ownership, so a `kill -9`'d member's configs are reclaimed by the
//! survivors once its leases expire — with its completed records adopted,
//! never recomputed.

use std::fs;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use flexsim::forensics::IncidentStore;
use flexsim::jsonio::{durable, obj, record_payload, u64_arr, Json};
use flexsim::{restore_checkpoint, RunResult, SweepError, SweepOptions, ENGINE_VERSION};

use crate::cache::ResultCache;
use crate::grid::SweepGrid;
use crate::http::{read_request, respond_error, respond_json, respond_with_headers, Request};
use crate::lease::LeaseDir;
use crate::signal;
use crate::state::{Job, Shared, SlotState};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Root of all durable state (`jobs/`, `cache/`, `incidents/`,
    /// `leases/`).
    pub data_dir: PathBuf,
    /// Simulation workers (the work-stealing pool size).
    pub workers: usize,
    /// HTTP handler threads (requests are cheap; 2 is plenty).
    pub http_threads: usize,
    /// Supervision knobs for each simulation. The `checkpoint` field is
    /// ignored — the server manages one checkpoint file per job.
    pub sweep: SweepOptions,
    /// Install a SIGINT handler so Ctrl-C takes the graceful path.
    pub handle_sigint: bool,
    /// Lease expiry window: a fleet member whose leases go unrenewed this
    /// long is presumed dead and its configs are reclaimed. (A provably
    /// dead pid on Linux is reclaimed immediately.)
    pub lease_expiry: Duration,
    /// Fleet scan interval: how often the scanner discovers sibling jobs
    /// and reconciles checkpoint progress.
    pub scan_interval: Duration,
}

impl ServerOptions {
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServerOptions {
            data_dir: data_dir.into(),
            workers: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            http_threads: 2,
            sweep: SweepOptions::default(),
            handle_sigint: false,
            lease_expiry: Duration::from_secs(5),
            scan_interval: Duration::from_millis(300),
        }
    }
}

/// What the HTTP handlers need.
struct Ctx {
    shared: Arc<Shared>,
    jobs_dir: PathBuf,
    incidents: IncidentStore,
    workers: usize,
}

/// A bound campaign server. [`bind`](CampaignServer::bind) recovers
/// durable state and starts the worker pool; [`serve`](CampaignServer::serve)
/// runs the accept loop until shutdown and drains gracefully.
pub struct CampaignServer {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    workers: Vec<JoinHandle<()>>,
    http_threads: usize,
    handle_sigint: bool,
}

impl CampaignServer {
    /// Binds `addr` (use port 0 for an ephemeral port), recovers jobs
    /// from `data_dir`, and starts the worker pool.
    pub fn bind(addr: impl ToSocketAddrs, opts: &ServerOptions) -> io::Result<CampaignServer> {
        let jobs_dir = opts.data_dir.join("jobs");
        fs::create_dir_all(&jobs_dir)?;
        let cache = ResultCache::open(opts.data_dir.join("cache"))?;
        let incidents = IncidentStore::open(opts.data_dir.join("incidents"))?;
        let leases = LeaseDir::open(opts.data_dir.join("leases"), opts.lease_expiry)?;

        let mut sweep = opts.sweep.clone();
        sweep.checkpoint = None;
        let shared = Shared::new(opts.workers, sweep, cache, leases);
        recover_jobs(&shared, &jobs_dir);

        let mut workers: Vec<JoinHandle<()>> = (0..opts.workers.max(1))
            .map(|w| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("campaign-worker-{w}"))
                    .spawn(move || s.worker_loop(w))
                    .expect("spawn worker")
            })
            .collect();

        // Fleet scanner: discovers jobs submitted through siblings and
        // reconciles checkpoint progress / cancellation markers.
        {
            let s = Arc::clone(&shared);
            let dir = jobs_dir.clone();
            let interval = opts.scan_interval;
            workers.push(
                thread::Builder::new()
                    .name("campaign-scanner".into())
                    .spawn(move || {
                        while !s.shutdown.load(Ordering::SeqCst) {
                            scan_sibling_jobs(&s, &dir);
                            s.reconcile();
                            thread::sleep(interval);
                        }
                    })
                    .expect("spawn scanner"),
            );
        }
        // Lease heartbeat: renews this process's held leases several
        // times per expiry window so live work is never reclaimed.
        {
            let s = Arc::clone(&shared);
            let tick = (opts.lease_expiry / 4).max(Duration::from_millis(50));
            workers.push(
                thread::Builder::new()
                    .name("campaign-heartbeat".into())
                    .spawn(move || {
                        while !s.shutdown.load(Ordering::SeqCst) {
                            s.heartbeat();
                            thread::sleep(tick);
                        }
                    })
                    .expect("spawn heartbeat"),
            );
        }

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(CampaignServer {
            listener,
            addr,
            ctx: Arc::new(Ctx {
                shared,
                jobs_dir,
                incidents,
                workers: opts.workers.max(1),
            }),
            workers,
            http_threads: opts.http_threads.max(1),
            handle_sigint: opts.handle_sigint,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs until `POST /shutdown` or SIGINT, then drains: in-flight
    /// requests and simulations finish and are checkpointed; queued
    /// configurations stay on disk for the next lifetime.
    pub fn serve(self) -> io::Result<()> {
        if self.handle_sigint {
            signal::install();
        }
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let handlers: Vec<JoinHandle<()>> = (0..self.http_threads)
            .map(|h| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&self.ctx);
                thread::Builder::new()
                    .name(format!("campaign-http-{h}"))
                    .spawn(move || loop {
                        let next = rx.lock().unwrap().recv_timeout(Duration::from_millis(100));
                        match next {
                            Ok(stream) => handle_connection(&ctx, stream),
                            Err(mpsc::RecvTimeoutError::Timeout) => continue,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    })
                    .expect("spawn http handler")
            })
            .collect();

        loop {
            if self.ctx.shared.shutdown.load(Ordering::SeqCst) || signal::triggered() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = tx.send(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(_) => thread::sleep(Duration::from_millis(25)),
            }
        }

        // Drain: stop feeding handlers, let them finish queued requests,
        // then stop the workers (their in-flight units checkpoint first).
        drop(tx);
        for h in handlers {
            let _ = h.join();
        }
        self.ctx.shared.trigger_shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Lists the job ids with a grid file in `jobs_dir`.
fn job_ids_on_disk(jobs_dir: &std::path::Path) -> Vec<u64> {
    let Ok(rd) = fs::read_dir(jobs_dir) else {
        return Vec::new();
    };
    let mut ids: Vec<u64> = rd
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("job-")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        })
        .collect();
    ids.sort_unstable();
    ids
}

/// Builds the in-memory [`Job`] for `id` from its on-disk grid and
/// checkpoint. Restores completed and cancelled slots, applies the
/// durable cancel marker, and seals a torn checkpoint tail with a guard
/// newline so fresh appends start clean.
fn load_job_from_disk(jobs_dir: &std::path::Path, id: u64) -> Option<Job> {
    let grid_path = jobs_dir.join(format!("job-{id}.json"));
    let text = fs::read_to_string(&grid_path).ok()?;
    let grid = match SweepGrid::from_json(&text) {
        Ok(g) => g,
        Err(_) => {
            eprintln!(
                "campaign: ignoring unparseable grid {}",
                grid_path.display()
            );
            return None;
        }
    };
    let configs = grid.expand();
    let ckpt = jobs_dir.join(format!("job-{id}.ckpt.jsonl"));
    let mut raw: Vec<Option<Result<RunResult, SweepError>>> = Vec::new();
    raw.resize_with(configs.len(), || None);
    let restore = restore_checkpoint(&ckpt, &configs, &mut raw);
    if restore.torn_tail {
        let _ = durable::append_line(&ckpt, "");
    }
    let slots: Vec<SlotState> = raw
        .iter()
        .map(|s| match s {
            Some(Ok(_)) => SlotState::Done {
                cached: false,
                restored: true,
            },
            Some(Err(SweepError::Cancelled { timed_out, .. })) => SlotState::Cancelled {
                timed_out: *timed_out,
            },
            _ => SlotState::Pending,
        })
        .collect();
    let cancel = flexsim::CancelToken::new();
    if ckpt.with_extension("cancel").exists() {
        cancel.cancel();
    }
    Some(Job {
        id,
        configs,
        slots,
        ckpt,
        restored: restore.restored,
        ckpt_skipped: restore.skipped_lines,
        ckpt_corrupt: restore.corrupt_frames,
        torn_tail: restore.torn_tail,
        cancel,
        timeout: grid.timeout_ms.map(Duration::from_millis),
        reclaimed_leases: 0,
    })
}

/// Re-creates every job found in `jobs_dir` and restores its checkpoint.
fn recover_jobs(shared: &Arc<Shared>, jobs_dir: &std::path::Path) {
    let mut inner = shared.inner.lock().unwrap();
    for id in job_ids_on_disk(jobs_dir) {
        let Some(mut job) = load_job_from_disk(jobs_dir, id) else {
            continue;
        };
        if job.cancel.is_cancelled() {
            for slot in &mut job.slots {
                if *slot == SlotState::Pending {
                    *slot = SlotState::Cancelled { timed_out: false };
                }
            }
        }
        inner.jobs.insert(id, job);
        Shared::enqueue_pending(&mut inner, id);
        inner.next_job_id = inner.next_job_id.max(id + 1);
        shared.stats.jobs_resumed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fleet discovery: loads jobs that appeared in `jobs_dir` after startup
/// (submitted through a sibling process).
fn scan_sibling_jobs(shared: &Arc<Shared>, jobs_dir: &std::path::Path) {
    let ids = job_ids_on_disk(jobs_dir);
    let new: Vec<u64> = {
        let inner = shared.inner.lock().unwrap();
        ids.into_iter()
            .filter(|id| !inner.jobs.contains_key(id))
            .collect()
    };
    for id in new {
        // Load outside the lock (grid parse + checkpoint scan do I/O).
        let Some(job) = load_job_from_disk(jobs_dir, id) else {
            continue;
        };
        let mut inner = shared.inner.lock().unwrap();
        // Double-checked: the HTTP thread may have inserted it meanwhile.
        if inner.jobs.contains_key(&id) {
            continue;
        }
        inner.jobs.insert(id, job);
        Shared::enqueue_pending(&mut inner, id);
        inner.next_job_id = inner.next_job_id.max(id + 1);
        drop(inner);
        shared.work_cv.notify_all();
    }
}

/// Reads one request, dispatches it, writes the response. All errors end
/// the connection; the protocol is one request per connection anyway.
fn handle_connection(ctx: &Arc<Ctx>, stream: TcpStream) {
    let mut stream = stream;
    let req = match read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond_error(&mut stream, 400, &e.to_string());
            return;
        }
    };
    // `/shutdown` answers before raising the latch so the client sees the
    // acknowledgment.
    if req.method == "POST" && req.path == "/shutdown" {
        let _ = respond_json(&mut stream, 200, "{\"shutting_down\":true}");
        ctx.shared.trigger_shutdown();
        return;
    }
    match dispatch(ctx, &req) {
        Ok(reply) => {
            let extra: Vec<(&str, &str)> = reply
                .headers
                .iter()
                .map(|(n, v)| (*n, v.as_str()))
                .collect();
            let _ = respond_with_headers(
                &mut stream,
                reply.status,
                reply.content_type,
                &extra,
                reply.body.as_bytes(),
            );
        }
        Err((status, msg)) => {
            let _ = respond_error(&mut stream, status, &msg);
        }
    }
}

/// A successful handler response.
struct Response {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }
}

type Reply = Result<Response, (u16, String)>;

fn dispatch(ctx: &Arc<Ctx>, req: &Request) -> Reply {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit_job(ctx, &req.body),
        ("GET", ["jobs", id]) => job_status(ctx, parse_id(id)?),
        ("GET", ["jobs", id, "results"]) => job_results(ctx, parse_id(id)?),
        ("POST", ["jobs", id, "cancel"]) => cancel_job(ctx, parse_id(id)?),
        ("GET", ["stats"]) => stats(ctx),
        ("GET", ["incidents"]) => incident_index(ctx),
        ("GET", ["incidents", n]) => incident_file(ctx, parse_id(n)?, "json"),
        ("GET", ["incidents", n, "dot"]) => incident_file(ctx, parse_id(n)?, "dot"),
        ("GET" | "POST", _) => Err((404, format!("no route for {} {}", req.method, req.path))),
        _ => Err((405, format!("method {} not supported", req.method))),
    }
}

fn parse_id(s: &str) -> Result<u64, (u16, String)> {
    s.parse().map_err(|_| (400, format!("bad id `{s}`")))
}

fn submit_job(ctx: &Arc<Ctx>, body: &[u8]) -> Reply {
    let text = std::str::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    let grid = SweepGrid::from_json(text).map_err(|e| (400, format!("bad grid: {e}")))?;
    let configs = grid.expand();
    let n = configs.len();
    let grid_json = grid.to_json().to_string();

    let mut inner = ctx.shared.inner.lock().unwrap();
    // Claim a job id fleet-wide: the grid file is created with
    // `O_CREAT|O_EXCL`, so an id a sibling already took (our counter can
    // lag theirs) fails cleanly and we advance to the next free one.
    let id = loop {
        let id = inner.next_job_id;
        inner.next_job_id += 1;
        let grid_path = ctx.jobs_dir.join(format!("job-{id}.json"));
        match durable::create_exclusive(&grid_path, grid_json.as_bytes()) {
            Ok(()) => break id,
            Err(e) if e.kind() == ErrorKind::AlreadyExists => continue,
            Err(e) => return Err((500, format!("persisting grid: {e}"))),
        }
    };
    let job = Job {
        id,
        configs,
        slots: vec![SlotState::Pending; n],
        ckpt: ctx.jobs_dir.join(format!("job-{id}.ckpt.jsonl")),
        restored: 0,
        ckpt_skipped: 0,
        ckpt_corrupt: 0,
        torn_tail: false,
        cancel: flexsim::CancelToken::new(),
        timeout: grid.timeout_ms.map(Duration::from_millis),
        reclaimed_leases: 0,
    };
    inner.jobs.insert(id, job);
    Shared::enqueue_pending(&mut inner, id);
    drop(inner);
    ctx.shared
        .stats
        .jobs_submitted
        .fetch_add(1, Ordering::Relaxed);
    ctx.shared.work_cv.notify_all();

    let body = obj(vec![
        ("id", Json::U64(id)),
        ("configs", Json::U64(n as u64)),
    ]);
    Ok(Response::json(body.to_string()))
}

/// `POST /jobs/:id/cancel`: raises the job's cancellation token, writes
/// the durable fleet-wide marker, settles every not-yet-running slot, and
/// persists status records for the slots this process owns. Running
/// configs (here or on siblings) stop at their next observer check.
fn cancel_job(ctx: &Arc<Ctx>, id: u64) -> Reply {
    let mut inner = ctx.shared.inner.lock().unwrap();
    let job = inner
        .jobs
        .get_mut(&id)
        .ok_or_else(|| (404, format!("no job {id}")))?;
    // The marker first: once this returns, the decision survives any
    // crash and reaches every fleet member via its scanner.
    let marker = job.ckpt.with_extension("cancel");
    durable::write_atomic(&marker, b"cancelled\n")
        .map_err(|e| (500, format!("persisting cancel marker: {e}")))?;
    job.cancel.cancel();
    let mut newly_cancelled = 0usize;
    for (index, slot) in job.slots.iter_mut().enumerate() {
        // Status records are appended only for slots queued *here*: a
        // `Pending` slot may be lease-owned by a sibling whose cancelled
        // run will persist its own record — the marker already makes the
        // decision durable for everyone else.
        let queued_here = *slot == SlotState::Queued;
        if matches!(*slot, SlotState::Pending | SlotState::Queued) {
            *slot = SlotState::Cancelled { timed_out: false };
            newly_cancelled += 1;
            if queued_here {
                let line =
                    flexsim::checkpoint_status_line(index, &job.configs[index].label(), false);
                let _ = durable::append_line(&job.ckpt, &flexsim::jsonio::frame_record(&line));
            }
        }
    }
    let t = job.tally();
    let body = obj(vec![
        ("id", Json::U64(id)),
        ("cancelled", Json::Bool(true)),
        ("newly_cancelled", Json::U64(newly_cancelled as u64)),
        ("still_running", Json::U64(t.running as u64)),
    ]);
    Ok(Response::json(body.to_string()))
}

fn job_status(ctx: &Arc<Ctx>, id: u64) -> Reply {
    let inner = ctx.shared.inner.lock().unwrap();
    let job = inner
        .jobs
        .get(&id)
        .ok_or_else(|| (404, format!("no job {id}")))?;
    let t = job.tally();
    let state = if job.is_settled() {
        "done"
    } else if t.running > 0 || t.done > 0 {
        "running"
    } else {
        "queued"
    };
    let slots: Vec<Json> = job
        .slots
        .iter()
        .map(|s| {
            Json::Str(match s {
                SlotState::Pending | SlotState::Queued => "pending".to_string(),
                SlotState::Running => "running".to_string(),
                SlotState::Done { cached: true, .. } => "done:cached".to_string(),
                SlotState::Done { restored: true, .. } => "done:restored".to_string(),
                SlotState::Done { .. } => "done".to_string(),
                SlotState::Failed(msg) => format!("failed: {msg}"),
                SlotState::Cancelled { timed_out: true } => "timed_out".to_string(),
                SlotState::Cancelled { timed_out: false } => "cancelled".to_string(),
            })
        })
        .collect();
    let body = obj(vec![
        ("id", Json::U64(id)),
        ("state", Json::Str(state.to_string())),
        ("configs", Json::U64(job.slots.len() as u64)),
        ("pending", Json::U64(t.pending as u64)),
        ("running", Json::U64(t.running as u64)),
        ("completed", Json::U64(t.done as u64)),
        ("cached", Json::U64(t.cached as u64)),
        ("restored", Json::U64(t.restored as u64)),
        ("failed", Json::U64(t.failed as u64)),
        ("cancelled", Json::U64(t.cancelled as u64)),
        ("reclaimed_leases", Json::U64(job.reclaimed_leases)),
        (
            "checkpoint",
            obj(vec![
                ("restored", Json::U64(job.restored as u64)),
                ("skipped_lines", Json::U64(job.ckpt_skipped as u64)),
                ("corrupt_frames", Json::U64(job.ckpt_corrupt as u64)),
                ("torn_tail", Json::Bool(job.torn_tail)),
            ]),
        ),
        ("slots", Json::Arr(slots)),
    ]);
    Ok(Response::json(body.to_string()))
}

/// `GET /jobs/:id/results`. Valid while the job is still running: the
/// body holds only whole, CRC-verified result records (a torn tail, a
/// damaged line, or a cancellation status record never reaches a
/// client), and the `X-Job-Complete` header says whether the stream is
/// the final word (`true`) or a partial snapshot worth re-fetching
/// (`false`).
fn job_results(ctx: &Arc<Ctx>, id: u64) -> Reply {
    let (ckpt, settled) = {
        let inner = ctx.shared.inner.lock().unwrap();
        let job = inner
            .jobs
            .get(&id)
            .ok_or_else(|| (404, format!("no job {id}")))?;
        (job.ckpt.clone(), job.is_settled())
    };
    let text = match fs::read_to_string(&ckpt) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => String::new(),
        Err(e) => return Err((500, format!("reading results: {e}"))),
    };
    let mut body = String::with_capacity(text.len());
    for line in text.lines() {
        let Some(payload) = record_payload(line) else {
            continue;
        };
        // Status records (cancelled / timed-out markers) are job
        // bookkeeping, not results.
        if flexsim::jsonio::parse(payload)
            .ok()
            .is_some_and(|v| v.get("result").is_some())
        {
            body.push_str(payload);
            body.push('\n');
        }
    }
    Ok(Response {
        status: 200,
        content_type: "application/x-ndjson",
        headers: vec![(
            "X-Job-Complete",
            if settled { "true" } else { "false" }.to_string(),
        )],
        body,
    })
}

fn stats(ctx: &Arc<Ctx>) -> Reply {
    let s = &ctx.shared.stats;
    let body = obj(vec![
        ("engine", Json::Str(ENGINE_VERSION.to_string())),
        ("workers", Json::U64(ctx.workers as u64)),
        (
            "jobs",
            obj(vec![
                (
                    "submitted",
                    Json::U64(s.jobs_submitted.load(Ordering::Relaxed)),
                ),
                (
                    "completed",
                    Json::U64(s.jobs_completed.load(Ordering::Relaxed)),
                ),
                ("resumed", Json::U64(s.jobs_resumed.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "cache",
            obj(vec![
                (
                    "hits",
                    Json::U64(ctx.shared.cache.hits.load(Ordering::Relaxed)),
                ),
                (
                    "misses",
                    Json::U64(ctx.shared.cache.misses.load(Ordering::Relaxed)),
                ),
                ("entries", Json::U64(ctx.shared.cache.entries() as u64)),
            ]),
        ),
        ("sims_run", Json::U64(s.sims_run.load(Ordering::Relaxed))),
        (
            "leases_reclaimed",
            Json::U64(s.leases_reclaimed.load(Ordering::Relaxed)),
        ),
    ]);
    Ok(Response::json(body.to_string()))
}

fn incident_index(ctx: &Arc<Ctx>) -> Reply {
    let entries = ctx
        .incidents
        .list()
        .map_err(|e| (500, format!("reading incident index: {e}")))?;
    let arr: Vec<Json> = entries
        .iter()
        .map(|e| {
            obj(vec![
                ("file", Json::Str(e.file.clone())),
                ("seq", Json::U64(e.seq as u64)),
                ("cycle", Json::U64(e.cycle)),
                ("label", Json::Str(e.label.clone())),
                ("fingerprint", Json::U64(e.fingerprint)),
                ("set_sizes", u64_arr(e.set_sizes.iter().copied())),
            ])
        })
        .collect();
    let body = obj(vec![("incidents", Json::Arr(arr))]);
    Ok(Response::json(body.to_string()))
}

fn incident_file(ctx: &Arc<Ctx>, n: u64, ext: &str) -> Reply {
    let path = ctx.incidents.dir().join(format!("incident-{n:05}.{ext}"));
    match fs::read_to_string(&path) {
        Ok(text) => Ok(Response {
            status: 200,
            content_type: if ext == "dot" {
                "text/vnd.graphviz"
            } else {
                "application/json"
            },
            headers: Vec::new(),
            body: text,
        }),
        Err(e) if e.kind() == ErrorKind::NotFound => Err((404, format!("no incident {n}"))),
        Err(e) => Err((500, format!("reading incident: {e}"))),
    }
}
