//! The campaign server: HTTP front end, job recovery, and the serve loop.
//!
//! # Endpoints
//!
//! | Method | Path                 | Meaning                                        |
//! |--------|----------------------|------------------------------------------------|
//! | POST   | `/jobs`              | Submit a sweep grid; returns `{"id", "configs"}` |
//! | GET    | `/jobs/:id`          | Job status with per-config progress            |
//! | GET    | `/jobs/:id/results`  | Completed results as JSON lines                |
//! | GET    | `/stats`             | Engine version, worker/job/cache counters      |
//! | POST   | `/shutdown`          | Graceful shutdown (in-flight configs finish)   |
//! | GET    | `/incidents`         | Deadlock-incident index                        |
//! | GET    | `/incidents/:n`      | Full incident record (JSON)                    |
//! | GET    | `/incidents/:n/dot`  | Knot-highlighted Graphviz rendering            |
//!
//! # Durability
//!
//! Everything lives under `data_dir`: `jobs/job-<id>.json` (the canonical
//! submitted grid), `jobs/job-<id>.ckpt.jsonl` (completed results in the
//! core checkpoint format — this file *is* the results stream), and
//! `cache/` (content-addressed results). A killed server recovers on the
//! next [`CampaignServer::bind`]: grids are re-expanded, checkpoints
//! restored with the core [`flexsim::restore_checkpoint`] (digest-exact,
//! torn final lines tolerated and surfaced), and unfinished
//! configurations re-enter the queues.

use std::fs;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use flexsim::forensics::IncidentStore;
use flexsim::jsonio::{obj, scan_lines, u64_arr, Json};
use flexsim::{restore_checkpoint, RunResult, SweepError, SweepOptions, ENGINE_VERSION};

use crate::cache::ResultCache;
use crate::grid::SweepGrid;
use crate::http::{read_request, respond, respond_error, respond_json, Request};
use crate::signal;
use crate::state::{Job, Shared, SlotState};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Root of all durable state (`jobs/`, `cache/`, `incidents/`).
    pub data_dir: PathBuf,
    /// Simulation workers (the work-stealing pool size).
    pub workers: usize,
    /// HTTP handler threads (requests are cheap; 2 is plenty).
    pub http_threads: usize,
    /// Supervision knobs for each simulation. The `checkpoint` field is
    /// ignored — the server manages one checkpoint file per job.
    pub sweep: SweepOptions,
    /// Install a SIGINT handler so Ctrl-C takes the graceful path.
    pub handle_sigint: bool,
}

impl ServerOptions {
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServerOptions {
            data_dir: data_dir.into(),
            workers: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            http_threads: 2,
            sweep: SweepOptions::default(),
            handle_sigint: false,
        }
    }
}

/// What the HTTP handlers need.
struct Ctx {
    shared: Arc<Shared>,
    jobs_dir: PathBuf,
    incidents: IncidentStore,
    workers: usize,
}

/// A bound campaign server. [`bind`](CampaignServer::bind) recovers
/// durable state and starts the worker pool; [`serve`](CampaignServer::serve)
/// runs the accept loop until shutdown and drains gracefully.
pub struct CampaignServer {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    workers: Vec<JoinHandle<()>>,
    http_threads: usize,
    handle_sigint: bool,
}

impl CampaignServer {
    /// Binds `addr` (use port 0 for an ephemeral port), recovers jobs
    /// from `data_dir`, and starts the worker pool.
    pub fn bind(addr: impl ToSocketAddrs, opts: &ServerOptions) -> io::Result<CampaignServer> {
        let jobs_dir = opts.data_dir.join("jobs");
        fs::create_dir_all(&jobs_dir)?;
        let cache = ResultCache::open(opts.data_dir.join("cache"))?;
        let incidents = IncidentStore::open(opts.data_dir.join("incidents"))?;

        let mut sweep = opts.sweep.clone();
        sweep.checkpoint = None;
        let shared = Shared::new(opts.workers, sweep, cache);
        recover_jobs(&shared, &jobs_dir);

        let workers = (0..opts.workers.max(1))
            .map(|w| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("campaign-worker-{w}"))
                    .spawn(move || s.worker_loop(w))
                    .expect("spawn worker")
            })
            .collect();

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(CampaignServer {
            listener,
            addr,
            ctx: Arc::new(Ctx {
                shared,
                jobs_dir,
                incidents,
                workers: opts.workers.max(1),
            }),
            workers,
            http_threads: opts.http_threads.max(1),
            handle_sigint: opts.handle_sigint,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs until `POST /shutdown` or SIGINT, then drains: in-flight
    /// requests and simulations finish and are checkpointed; queued
    /// configurations stay on disk for the next lifetime.
    pub fn serve(self) -> io::Result<()> {
        if self.handle_sigint {
            signal::install();
        }
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let handlers: Vec<JoinHandle<()>> = (0..self.http_threads)
            .map(|h| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&self.ctx);
                thread::Builder::new()
                    .name(format!("campaign-http-{h}"))
                    .spawn(move || loop {
                        let next = rx.lock().unwrap().recv_timeout(Duration::from_millis(100));
                        match next {
                            Ok(stream) => handle_connection(&ctx, stream),
                            Err(mpsc::RecvTimeoutError::Timeout) => continue,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    })
                    .expect("spawn http handler")
            })
            .collect();

        loop {
            if self.ctx.shared.shutdown.load(Ordering::SeqCst) || signal::triggered() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = tx.send(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(_) => thread::sleep(Duration::from_millis(25)),
            }
        }

        // Drain: stop feeding handlers, let them finish queued requests,
        // then stop the workers (their in-flight units checkpoint first).
        drop(tx);
        for h in handlers {
            let _ = h.join();
        }
        self.ctx.shared.trigger_shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Re-creates every job found in `jobs_dir` and restores its checkpoint.
fn recover_jobs(shared: &Arc<Shared>, jobs_dir: &std::path::Path) {
    let Ok(rd) = fs::read_dir(jobs_dir) else {
        return;
    };
    let mut ids: Vec<u64> = rd
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("job-")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        })
        .collect();
    ids.sort_unstable();

    let mut inner = shared.inner.lock().unwrap();
    for id in ids {
        let grid_path = jobs_dir.join(format!("job-{id}.json"));
        let Ok(text) = fs::read_to_string(&grid_path) else {
            continue;
        };
        let Ok(grid) = SweepGrid::from_json(&text) else {
            eprintln!(
                "campaign: ignoring unparseable grid {}",
                grid_path.display()
            );
            continue;
        };
        let configs = grid.expand();
        let ckpt = jobs_dir.join(format!("job-{id}.ckpt.jsonl"));
        let mut raw: Vec<Option<Result<RunResult, SweepError>>> = Vec::new();
        raw.resize_with(configs.len(), || None);
        let restore = restore_checkpoint(&ckpt, &configs, &mut raw);
        let slots: Vec<SlotState> = raw
            .iter()
            .map(|s| match s {
                Some(Ok(_)) => SlotState::Done {
                    cached: false,
                    restored: true,
                },
                _ => SlotState::Pending,
            })
            .collect();
        let job = Job {
            id,
            configs,
            slots,
            ckpt,
            restored: restore.restored,
            ckpt_skipped: restore.skipped_lines,
            torn_tail: restore.torn_tail,
            needs_newline_guard: restore.torn_tail,
        };
        inner.jobs.insert(id, job);
        Shared::enqueue_pending(&mut inner, id);
        inner.next_job_id = inner.next_job_id.max(id + 1);
        shared.stats.jobs_resumed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reads one request, dispatches it, writes the response. All errors end
/// the connection; the protocol is one request per connection anyway.
fn handle_connection(ctx: &Arc<Ctx>, stream: TcpStream) {
    let mut stream = stream;
    let req = match read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond_error(&mut stream, 400, &e.to_string());
            return;
        }
    };
    // `/shutdown` answers before raising the latch so the client sees the
    // acknowledgment.
    if req.method == "POST" && req.path == "/shutdown" {
        let _ = respond_json(&mut stream, 200, "{\"shutting_down\":true}");
        ctx.shared.trigger_shutdown();
        return;
    }
    match dispatch(ctx, &req) {
        Ok((status, content_type, body)) => {
            let _ = respond(&mut stream, status, content_type, body.as_bytes());
        }
        Err((status, msg)) => {
            let _ = respond_error(&mut stream, status, &msg);
        }
    }
}

type Reply = Result<(u16, &'static str, String), (u16, String)>;

fn dispatch(ctx: &Arc<Ctx>, req: &Request) -> Reply {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit_job(ctx, &req.body),
        ("GET", ["jobs", id]) => job_status(ctx, parse_id(id)?),
        ("GET", ["jobs", id, "results"]) => job_results(ctx, parse_id(id)?),
        ("GET", ["stats"]) => stats(ctx),
        ("GET", ["incidents"]) => incident_index(ctx),
        ("GET", ["incidents", n]) => incident_file(ctx, parse_id(n)?, "json"),
        ("GET", ["incidents", n, "dot"]) => incident_file(ctx, parse_id(n)?, "dot"),
        ("GET" | "POST", _) => Err((404, format!("no route for {} {}", req.method, req.path))),
        _ => Err((405, format!("method {} not supported", req.method))),
    }
}

fn parse_id(s: &str) -> Result<u64, (u16, String)> {
    s.parse().map_err(|_| (400, format!("bad id `{s}`")))
}

fn submit_job(ctx: &Arc<Ctx>, body: &[u8]) -> Reply {
    let text = std::str::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    let grid = SweepGrid::from_json(text).map_err(|e| (400, format!("bad grid: {e}")))?;
    let configs = grid.expand();
    let n = configs.len();

    let mut inner = ctx.shared.inner.lock().unwrap();
    let id = inner.next_job_id;
    inner.next_job_id += 1;
    let grid_path = ctx.jobs_dir.join(format!("job-{id}.json"));
    fs::write(&grid_path, grid.to_json().to_string())
        .map_err(|e| (500, format!("persisting grid: {e}")))?;
    let job = Job {
        id,
        configs,
        slots: vec![SlotState::Pending; n],
        ckpt: ctx.jobs_dir.join(format!("job-{id}.ckpt.jsonl")),
        restored: 0,
        ckpt_skipped: 0,
        torn_tail: false,
        needs_newline_guard: false,
    };
    inner.jobs.insert(id, job);
    Shared::enqueue_pending(&mut inner, id);
    drop(inner);
    ctx.shared
        .stats
        .jobs_submitted
        .fetch_add(1, Ordering::Relaxed);
    ctx.shared.work_cv.notify_all();

    let body = obj(vec![
        ("id", Json::U64(id)),
        ("configs", Json::U64(n as u64)),
    ]);
    Ok((200, "application/json", body.to_string()))
}

fn job_status(ctx: &Arc<Ctx>, id: u64) -> Reply {
    let inner = ctx.shared.inner.lock().unwrap();
    let job = inner
        .jobs
        .get(&id)
        .ok_or_else(|| (404, format!("no job {id}")))?;
    let (pending, running, done, cached, restored, failed) = job.tally();
    let state = if job.is_settled() {
        "done"
    } else if running > 0 || done > 0 {
        "running"
    } else {
        "queued"
    };
    let slots: Vec<Json> = job
        .slots
        .iter()
        .map(|s| {
            Json::Str(match s {
                SlotState::Pending => "pending".to_string(),
                SlotState::Running => "running".to_string(),
                SlotState::Done { cached: true, .. } => "done:cached".to_string(),
                SlotState::Done { restored: true, .. } => "done:restored".to_string(),
                SlotState::Done { .. } => "done".to_string(),
                SlotState::Failed(msg) => format!("failed: {msg}"),
            })
        })
        .collect();
    let body = obj(vec![
        ("id", Json::U64(id)),
        ("state", Json::Str(state.to_string())),
        ("configs", Json::U64(job.slots.len() as u64)),
        ("pending", Json::U64(pending as u64)),
        ("running", Json::U64(running as u64)),
        ("completed", Json::U64(done as u64)),
        ("cached", Json::U64(cached as u64)),
        ("restored", Json::U64(restored as u64)),
        ("failed", Json::U64(failed as u64)),
        (
            "checkpoint",
            obj(vec![
                ("restored", Json::U64(job.restored as u64)),
                ("skipped_lines", Json::U64(job.ckpt_skipped as u64)),
                ("torn_tail", Json::Bool(job.torn_tail)),
            ]),
        ),
        ("slots", Json::Arr(slots)),
    ]);
    Ok((200, "application/json", body.to_string()))
}

fn job_results(ctx: &Arc<Ctx>, id: u64) -> Reply {
    let ckpt = {
        let inner = ctx.shared.inner.lock().unwrap();
        inner
            .jobs
            .get(&id)
            .ok_or_else(|| (404, format!("no job {id}")))?
            .ckpt
            .clone()
    };
    let text = match fs::read_to_string(&ckpt) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => String::new(),
        Err(e) => return Err((500, format!("reading results: {e}"))),
    };
    // Stream only whole, parseable lines — a torn tail or a damaged line
    // never reaches a client.
    let lines: Vec<&str> = text.lines().collect();
    let mut body = String::with_capacity(text.len());
    for (lineno, _) in scan_lines(&text).values {
        body.push_str(lines[lineno]);
        body.push('\n');
    }
    Ok((200, "application/x-ndjson", body))
}

fn stats(ctx: &Arc<Ctx>) -> Reply {
    let s = &ctx.shared.stats;
    let body = obj(vec![
        ("engine", Json::Str(ENGINE_VERSION.to_string())),
        ("workers", Json::U64(ctx.workers as u64)),
        (
            "jobs",
            obj(vec![
                (
                    "submitted",
                    Json::U64(s.jobs_submitted.load(Ordering::Relaxed)),
                ),
                (
                    "completed",
                    Json::U64(s.jobs_completed.load(Ordering::Relaxed)),
                ),
                ("resumed", Json::U64(s.jobs_resumed.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "cache",
            obj(vec![
                (
                    "hits",
                    Json::U64(ctx.shared.cache.hits.load(Ordering::Relaxed)),
                ),
                (
                    "misses",
                    Json::U64(ctx.shared.cache.misses.load(Ordering::Relaxed)),
                ),
                ("entries", Json::U64(ctx.shared.cache.entries() as u64)),
            ]),
        ),
        ("sims_run", Json::U64(s.sims_run.load(Ordering::Relaxed))),
    ]);
    Ok((200, "application/json", body.to_string()))
}

fn incident_index(ctx: &Arc<Ctx>) -> Reply {
    let entries = ctx
        .incidents
        .list()
        .map_err(|e| (500, format!("reading incident index: {e}")))?;
    let arr: Vec<Json> = entries
        .iter()
        .map(|e| {
            obj(vec![
                ("file", Json::Str(e.file.clone())),
                ("seq", Json::U64(e.seq as u64)),
                ("cycle", Json::U64(e.cycle)),
                ("label", Json::Str(e.label.clone())),
                ("fingerprint", Json::U64(e.fingerprint)),
                ("set_sizes", u64_arr(e.set_sizes.iter().copied())),
            ])
        })
        .collect();
    let body = obj(vec![("incidents", Json::Arr(arr))]);
    Ok((200, "application/json", body.to_string()))
}

fn incident_file(ctx: &Arc<Ctx>, n: u64, ext: &str) -> Reply {
    let path = ctx.incidents.dir().join(format!("incident-{n:05}.{ext}"));
    match fs::read_to_string(&path) {
        Ok(text) => Ok((
            200,
            if ext == "dot" {
                "text/vnd.graphviz"
            } else {
                "application/json"
            },
            text,
        )),
        Err(e) if e.kind() == ErrorKind::NotFound => Err((404, format!("no incident {n}"))),
        Err(e) => Err((500, format!("reading incident: {e}"))),
    }
}
