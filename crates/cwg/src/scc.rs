//! Iterative Tarjan strongly-connected components.

use crate::adjacency::Adjacency;
use crate::VertexId;

const UNVISITED: u32 = u32::MAX;

/// Result of an SCC decomposition.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Component index of each vertex. Components are numbered in **reverse
    /// topological order** (Tarjan emits a component only after everything
    /// it can reach), i.e. if component `a` has an edge into component `b`
    /// then `a > b`.
    pub comp_of: Vec<u32>,
    /// Vertices of each component.
    pub components: Vec<Vec<VertexId>>,
}

impl SccResult {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the graph was empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Reusable state for repeated SCC runs.
///
/// The detection loop decomposes a similarly-sized CWG every epoch, so all
/// of Tarjan's working arrays — plus the output, stored as a component CSR
/// (`comp_offsets`/`comp_vertices`) instead of a `Vec` per component — live
/// here and are refilled in place: the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct SccScratch {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    /// Explicit DFS frames: (vertex, next child edge to explore).
    frames: Vec<(u32, usize)>,
    comp_of: Vec<u32>,
    comp_offsets: Vec<u32>,
    comp_vertices: Vec<VertexId>,
}

impl SccScratch {
    /// Empty scratch; capacities grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decomposes `adj` (vertices `0..n`), replacing any previous result.
    ///
    /// Implemented iteratively: deep chains of waiting messages would
    /// overflow the call stack of the textbook recursive formulation on
    /// large networks.
    pub fn run<A: Adjacency + ?Sized>(&mut self, adj: &A) {
        let n = adj.num_vertices();
        self.index.clear();
        self.index.resize(n, UNVISITED);
        self.lowlink.clear();
        self.lowlink.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.stack.clear();
        self.frames.clear();
        self.comp_of.clear();
        self.comp_of.resize(n, 0);
        self.comp_offsets.clear();
        self.comp_offsets.push(0);
        self.comp_vertices.clear();
        let mut next_index = 0u32;

        for start in 0..n as u32 {
            if self.index[start as usize] != UNVISITED {
                continue;
            }
            self.frames.push((start, 0));
            self.index[start as usize] = next_index;
            self.lowlink[start as usize] = next_index;
            next_index += 1;
            self.stack.push(start);
            self.on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut ei)) = self.frames.last_mut() {
                let outs = adj.neighbors(v);
                if *ei < outs.len() {
                    let w = outs[*ei];
                    *ei += 1;
                    if self.index[w as usize] == UNVISITED {
                        self.index[w as usize] = next_index;
                        self.lowlink[w as usize] = next_index;
                        next_index += 1;
                        self.stack.push(w);
                        self.on_stack[w as usize] = true;
                        self.frames.push((w, 0));
                    } else if self.on_stack[w as usize] {
                        self.lowlink[v as usize] =
                            self.lowlink[v as usize].min(self.index[w as usize]);
                    }
                } else {
                    self.frames.pop();
                    if let Some(&mut (parent, _)) = self.frames.last_mut() {
                        self.lowlink[parent as usize] =
                            self.lowlink[parent as usize].min(self.lowlink[v as usize]);
                    }
                    if self.lowlink[v as usize] == self.index[v as usize] {
                        let comp_id = (self.comp_offsets.len() - 1) as u32;
                        loop {
                            let w = self.stack.pop().expect("tarjan stack underflow");
                            self.on_stack[w as usize] = false;
                            self.comp_of[w as usize] = comp_id;
                            self.comp_vertices.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.comp_offsets.push(self.comp_vertices.len() as u32);
                    }
                }
            }
        }
    }

    /// Number of components of the last run.
    pub fn num_components(&self) -> usize {
        self.comp_offsets.len().saturating_sub(1)
    }

    /// Component index of `v` (reverse topological numbering).
    #[inline]
    pub fn comp_of(&self, v: VertexId) -> u32 {
        self.comp_of[v as usize]
    }

    /// Vertices of component `c`, in Tarjan pop order.
    #[inline]
    pub fn component(&self, c: u32) -> &[VertexId] {
        let s = self.comp_offsets[c as usize] as usize;
        let e = self.comp_offsets[c as usize + 1] as usize;
        &self.comp_vertices[s..e]
    }

    /// Iterates components in emission (reverse topological) order.
    pub fn components(&self) -> impl Iterator<Item = &[VertexId]> {
        (0..self.num_components() as u32).map(move |c| self.component(c))
    }
}

/// Computes strongly connected components of `adj` (vertices `0..adj.len()`).
///
/// Convenience wrapper over [`SccScratch`] that allocates fresh scratch and
/// copies the result out; repeated callers (the detection loop) hold a
/// scratch instead.
pub fn scc(adj: &[Vec<VertexId>]) -> SccResult {
    let mut scratch = SccScratch::new();
    scratch.run(adj);
    SccResult {
        comp_of: scratch.comp_of.clone(),
        components: scratch.components().map(<[VertexId]>::to_vec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp_sets(r: &SccResult) -> Vec<Vec<VertexId>> {
        let mut cs: Vec<Vec<VertexId>> = r
            .components
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        cs.sort();
        cs
    }

    #[test]
    fn empty_graph() {
        let r = scc(&[]);
        assert!(r.is_empty());
    }

    #[test]
    fn singletons_without_edges() {
        let r = scc(&[vec![], vec![], vec![]]);
        assert_eq!(r.len(), 3);
        assert!(r.components.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let r = scc(&adj);
        assert_eq!(r.len(), 1);
        assert_eq!(comp_sets(&r), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn chain_is_all_singletons() {
        let adj = vec![vec![1], vec![2], vec![]];
        let r = scc(&adj);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn two_cycles_bridged() {
        // 0<->1 -> 2<->3
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let r = scc(&adj);
        assert_eq!(comp_sets(&r), vec![vec![0, 1], vec![2, 3]]);
        // reverse topological numbering: {2,3} emitted before {0,1}
        let c01 = r.comp_of[0];
        let c23 = r.comp_of[2];
        assert!(c01 > c23);
    }

    #[test]
    fn figure_one_knot_shape() {
        // The single 8-cycle of Figure 1b.
        let adj: Vec<Vec<u32>> = (0..8u32).map(|v| vec![(v + 1) % 8]).collect();
        let r = scc(&adj);
        assert_eq!(r.len(), 1);
        assert_eq!(r.components[0].len(), 8);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-vertex path: would blow the stack if recursion were used.
        let n = 100_000;
        let adj: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| {
                if v + 1 < n as u32 {
                    vec![v + 1]
                } else {
                    vec![]
                }
            })
            .collect();
        let r = scc(&adj);
        assert_eq!(r.len(), n);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let adj = vec![vec![0], vec![]];
        let r = scc(&adj);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let graphs: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1], vec![2], vec![0]],
            vec![vec![1], vec![0, 2], vec![3], vec![2]],
            vec![],
            vec![vec![0]],
        ];
        let mut scratch = SccScratch::new();
        for adj in &graphs {
            scratch.run(adj);
            let fresh = scc(adj);
            assert_eq!(scratch.num_components(), fresh.len());
            for (c, comp) in fresh.components.iter().enumerate() {
                assert_eq!(scratch.component(c as u32), comp.as_slice());
            }
            for v in 0..adj.len() as u32 {
                assert_eq!(scratch.comp_of(v), fresh.comp_of[v as usize]);
            }
        }
    }
}
