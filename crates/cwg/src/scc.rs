//! Iterative Tarjan strongly-connected components.

use crate::VertexId;

/// Result of an SCC decomposition.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Component index of each vertex. Components are numbered in **reverse
    /// topological order** (Tarjan emits a component only after everything
    /// it can reach), i.e. if component `a` has an edge into component `b`
    /// then `a > b`.
    pub comp_of: Vec<u32>,
    /// Vertices of each component.
    pub components: Vec<Vec<VertexId>>,
}

impl SccResult {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the graph was empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Computes strongly connected components of `adj` (vertices `0..adj.len()`).
///
/// Implemented iteratively: deep chains of waiting messages would overflow
/// the call stack of the textbook recursive formulation on large networks.
pub fn scc(adj: &[Vec<VertexId>]) -> SccResult {
    let n = adj.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![0u32; n];
    let mut components: Vec<Vec<VertexId>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frames: (vertex, next child edge to explore).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            if *ei < adj[v as usize].len() {
                let w = adj[v as usize][*ei];
                *ei += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let comp_id = components.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp_id;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }

    SccResult {
        comp_of,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp_sets(r: &SccResult) -> Vec<Vec<VertexId>> {
        let mut cs: Vec<Vec<VertexId>> = r
            .components
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        cs.sort();
        cs
    }

    #[test]
    fn empty_graph() {
        let r = scc(&[]);
        assert!(r.is_empty());
    }

    #[test]
    fn singletons_without_edges() {
        let r = scc(&[vec![], vec![], vec![]]);
        assert_eq!(r.len(), 3);
        assert!(r.components.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let r = scc(&adj);
        assert_eq!(r.len(), 1);
        assert_eq!(comp_sets(&r), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn chain_is_all_singletons() {
        let adj = vec![vec![1], vec![2], vec![]];
        let r = scc(&adj);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn two_cycles_bridged() {
        // 0<->1 -> 2<->3
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let r = scc(&adj);
        assert_eq!(comp_sets(&r), vec![vec![0, 1], vec![2, 3]]);
        // reverse topological numbering: {2,3} emitted before {0,1}
        let c01 = r.comp_of[0];
        let c23 = r.comp_of[2];
        assert!(c01 > c23);
    }

    #[test]
    fn figure_one_knot_shape() {
        // The single 8-cycle of Figure 1b.
        let adj: Vec<Vec<u32>> = (0..8u32).map(|v| vec![(v + 1) % 8]).collect();
        let r = scc(&adj);
        assert_eq!(r.len(), 1);
        assert_eq!(r.components[0].len(), 8);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-vertex path: would blow the stack if recursion were used.
        let n = 100_000;
        let adj: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| if v + 1 < n as u32 { vec![v + 1] } else { vec![] })
            .collect();
        let r = scc(&adj);
        assert_eq!(r.len(), n);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let adj = vec![vec![0], vec![]];
        let r = scc(&adj);
        assert_eq!(r.len(), 2);
    }
}
