//! Graphviz (DOT) rendering of channel wait-for graphs.

use crate::analysis::Analysis;
use crate::graph::WaitGraph;
use std::collections::HashSet;
use std::fmt::Write;

/// Escapes a string for use inside a double-quoted DOT attribute value:
/// backslashes and quotes are escaped, newlines become DOT line breaks.
/// Without this, a graph title taken from an arbitrary config label (which
/// may contain quotes) would produce syntactically invalid DOT.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

impl WaitGraph {
    /// Renders the CWG in Graphviz DOT format, in the visual language of
    /// the paper's figures: solid arcs for ownership order, dashed arcs
    /// for requests, arcs labelled with their message. When an
    /// [`Analysis`] is supplied, knot vertices are shaded so deadlocks
    /// stand out.
    ///
    /// Only vertices that participate (owned, requested, or connected)
    /// are emitted; CWG snapshots are mostly empty space.
    pub fn to_dot(&self, analysis: Option<&Analysis>) -> String {
        self.to_dot_titled("", analysis)
    }

    /// [`to_dot`](Self::to_dot) with a graph title — the form incident
    /// artifacts use, titling the graph with the run's config label and
    /// capture cycle. The title is escaped, so arbitrary config labels
    /// always yield valid DOT.
    pub fn to_dot_titled(&self, title: &str, analysis: Option<&Analysis>) -> String {
        let knot: HashSet<u32> = analysis
            .map(|a| {
                a.deadlocks
                    .iter()
                    .flat_map(|d| d.knot.iter().copied())
                    .collect()
            })
            .unwrap_or_default();

        let mut used: HashSet<u32> = HashSet::new();
        for v in 0..self.num_vertices() as u32 {
            if self.owner(v).is_some() {
                used.insert(v);
            }
            for e in self.edges(v) {
                used.insert(v);
                used.insert(e.to);
            }
        }
        let mut vertices: Vec<u32> = used.into_iter().collect();
        vertices.sort_unstable();

        let mut out = String::from("digraph cwg {\n  rankdir=LR;\n  node [shape=circle];\n");
        if !title.is_empty() {
            let _ = writeln!(out, "  label=\"{}\";\n  labelloc=t;", dot_escape(title));
        }
        for &v in &vertices {
            let mut attrs = String::new();
            if knot.contains(&v) {
                attrs.push_str(" style=filled fillcolor=lightcoral");
            }
            let label = match self.owner(v) {
                Some(m) => format!("c{v}\nm{m}"),
                None => format!("c{v}\nfree"),
            };
            let _ = writeln!(out, "  v{v} [label=\"{}\"{attrs}];", dot_escape(&label));
        }
        for &v in &vertices {
            for e in self.edges(v) {
                let style = if e.dashed { "dashed" } else { "solid" };
                let _ = writeln!(
                    out,
                    "  v{v} -> v{} [style={style} label=\"{}\"];",
                    e.to,
                    dot_escape(&format!("m{}", e.msg))
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deadlocked() -> WaitGraph {
        let mut g = WaitGraph::new(6);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[2, 3]);
        g.add_requests(1, &[2]);
        g.add_requests(2, &[0]);
        g
    }

    #[test]
    fn renders_solid_and_dashed_edges() {
        let g = deadlocked();
        let dot = g.to_dot(None);
        assert!(dot.starts_with("digraph cwg {"));
        assert!(dot.contains("v0 -> v1 [style=solid label=\"m1\"]"));
        assert!(dot.contains("v1 -> v2 [style=dashed label=\"m1\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlights_knot_with_analysis() {
        let g = deadlocked();
        let a = g.analyze(100);
        let dot = g.to_dot(Some(&a));
        assert!(dot.contains("fillcolor=lightcoral"));
    }

    #[test]
    fn skips_untouched_vertices() {
        let g = deadlocked(); // vertices 4,5 unused
        let dot = g.to_dot(None);
        assert!(!dot.contains("v4 "));
        assert!(!dot.contains("v5 "));
    }

    #[test]
    fn requested_free_vertex_labelled_free() {
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0]);
        g.add_requests(1, &[3]);
        let dot = g.to_dot(None);
        assert!(dot.contains("v3 [label=\"c3\\nfree\"]"));
    }

    #[test]
    fn title_with_quotes_and_backslashes_is_escaped() {
        let g = deadlocked();
        let dot = g.to_dot_titled("uni-8ary2 \"DOR\" vc=1 \\ load=1.00\ncycle 1450", None);
        assert!(dot.contains("label=\"uni-8ary2 \\\"DOR\\\" vc=1 \\\\ load=1.00\\ncycle 1450\";"));
        // Every quote in the output is balanced: an unescaped interior
        // quote would make the count of raw-quote boundaries odd.
        let unescaped = dot.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }

    #[test]
    fn untitled_output_has_no_graph_label() {
        let dot = deadlocked().to_dot(None);
        assert!(!dot.contains("label=\"\";"));
        assert!(!dot.contains("labelloc"));
    }
}
