//! Incrementally maintained channel wait-for state.
//!
//! The snapshot detector rebuilds a [`WaitGraph`] from scratch at every
//! detection epoch. [`DynamicWaitGraph`] instead *persists* the blocked
//! wait-state across cycles and is patched by the engine's own
//! block/acquire/release event stream, so "is there a knot right now?" is
//! answerable every cycle at near-zero marginal cost when nothing blocked
//! has changed.
//!
//! # What is tracked — and why only blocked messages
//!
//! A record exists per **blocked** message: its settled ownership chain and
//! its request targets (possibly empty for fault-stranded messages).
//! Moving messages are deliberately absent. This is lossless for knot
//! detection:
//!
//! * A moving message's chain is a path of solid arcs ending at its head,
//!   which has no dashed out-arcs — a sink path. No vertex of it can lie on
//!   a cycle, so none can belong to a (non-trivial) knot SCC.
//! * An unowned vertex has no out-arcs at all in either graph.
//! * Blocked-owned vertices have *identical* out-arcs in the full and the
//!   blocked-only graph (solid arcs along the blocked chain, dashed arcs
//!   from its head), so the non-trivial SCCs among them — and their
//!   terminal status — coincide.
//!
//! Hence the blocked-only graph has exactly the full graph's knots, and the
//! per-knot deadlock sets match [`WaitGraph::knot_deadlock_sets`] on a
//! fresh full snapshot (set-for-set; emission order may differ when
//! several independent knots coexist).
//!
//! # Maintenance invariants
//!
//! Between [`commit`](DynamicWaitGraph::commit)s the structure maintains:
//!
//! 1. `records[m]` = the settled chain + requests of every blocked message
//!    `m`, verbatim from the engine's snapshot extraction rules.
//! 2. `owner[v] = m` iff `v` is on `records[m].chain` (blocked owners
//!    only; each vertex has at most one).
//! 3. `records[m].unowned` = the number of `m`'s request targets *not*
//!    owned by any blocked message.
//! 4. `s0` = the number of records with a non-empty request set and
//!    `unowned == 0`.
//! 5. `fp_partial` = the commutative sum of per-record hashes, identical
//!    to the simulator snapshot fingerprint's partial sum (same FNV-1a +
//!    SplitMix64 construction), so
//!    [`fingerprint`](DynamicWaitGraph::fingerprint) equals
//!    `SnapshotArena::fingerprint()` for the same wait-state.
//!
//! Invariant 3/4 give an O(1) **no-knot certificate**: every deadlock-set
//! member of a knot has all of its request targets owned by blocked
//! messages (a free or moving-owned target would be an arc leaving the
//! terminal component), so `s0 == 0` proves the graph knot-free without
//! touching any adjacency. Knots moreover live *entirely* among S0
//! records — a vertex whose owner has an escape reaches that escape — so
//! the lazy verdicts go stale only when a commit touches an S0 record or
//! moves a record across the S0 boundary; all other churn (the busy
//! frontier of a congestion tree) leaves both the boolean verdict and the
//! exact deadlock sets untouched.
//!
//! The boolean verdict is further kept *directionally*: commits can only
//! grow the knot candidates (records entering S0, S0 insertions) or
//! shrink them (S0 removals and exits), and each direction is one-sided.
//! Growth never removes ownership or arcs from surviving records, so a
//! `true` verdict carries over untouched; it is guarded by a stamped
//! **witness core** and only a shrink hitting that core forces a full
//! worklist reduction (greatest fixpoint of "requests fully owned by
//! surviving records" — non-empty ⟺ knot, no graph build). Shrinks can
//! never create a core, so a `false` verdict carries over too; records
//! entering S0 are queued as a **delta**, and a newly formed core must
//! contain one of them (a core of previously-S0 records with unchanged
//! arcs would have existed before), so probing each delta record's
//! forward target-owner closure — escape found, or a closed all-S0 core —
//! re-certifies the verdict in O(delta) instead of O(state). Only a
//! demand for the exact sets rebuilds the (small) blocked-only graph and
//! runs the Tarjan knot decomposition.
//!
//! # Update protocol
//!
//! Edits arrive as staged per-message states and are applied by
//! [`commit`](DynamicWaitGraph::commit) in two phases: all removals of
//! staged messages' old records first, then all insertions of their new
//! states. Within one engine cycle a VC can migrate between two staged
//! messages (released by one, acquired by another); removing every stale
//! record before inserting any new one makes the ownership index
//! transiently consistent regardless of staging order.

use crate::analysis::DetectorScratch;
use crate::graph::{MessageId, VertexId, WaitGraph};
use std::collections::HashMap;

/// Per-blocked-message record.
#[derive(Clone, Debug)]
struct Rec {
    chain: Vec<VertexId>,
    requests: Vec<VertexId>,
    /// Request targets currently not owned by any blocked message.
    unowned: u32,
    /// Finalized per-record hash (see [`record_hash`]).
    hash: u64,
    /// Scratch: last reduction/probe pass that visited this record.
    red_gen: u64,
    /// Witness stamp: equals `wit_epoch` iff this record belongs to the
    /// core certifying the cached `true` verdict.
    wit_gen: u64,
}

impl Rec {
    #[inline]
    fn in_s0(&self) -> bool {
        !self.requests.is_empty() && self.unowned == 0
    }
}

/// One staged edit: the message's new state, or its removal.
#[derive(Clone, Debug)]
enum Staged {
    /// `(chain_len, pool range start)` — chain then requests, contiguous.
    Blocked {
        start: u32,
        chain_len: u32,
        len: u32,
    },
    Clear,
}

/// FNV-1a over a word stream (same constants as the simulator snapshot).
#[inline]
fn fnv1a_words(mut h: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer (same as the simulator snapshot).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-record hash of the blocked fingerprint: FNV-1a over
/// `(id, chain, separator, requests)`, SplitMix64-finalized. Must stay
/// bit-compatible with the simulator's `SnapshotArena` hashing — the
/// equality is locked by the cross-crate differential tests.
fn record_hash(id: MessageId, chain: &[VertexId], requests: &[VertexId]) -> u64 {
    let mut h = fnv1a_words(0xcbf2_9ce4_8422_2325, [id]);
    h = fnv1a_words(h, chain.iter().map(|&v| v as u64));
    h = fnv1a_words(h, [u64::MAX]);
    h = fnv1a_words(h, requests.iter().map(|&v| v as u64));
    mix(h)
}

/// Owner-index sentinel: the vertex is not held by any blocked message.
const NO_OWNER: MessageId = MessageId::MAX;

/// SplitMix64-based hasher for the id-keyed record table. Message ids
/// are sequence numbers; SipHash resistance is wasted on them, and the
/// record table sits on the per-cycle hot path.
#[derive(Default, Clone)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = mix(self.0 ^ b as u64);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = mix(self.0 ^ n);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.0 = mix(self.0 ^ n as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.0 = mix(self.0 ^ n as u64);
    }
}

type IdMap<V> = HashMap<MessageId, V, std::hash::BuildHasherDefault<IdHasher>>;

/// Persistent, event-patched blocked wait-state with per-cycle knot
/// verdicts. See the module docs for the maintenance invariants.
#[derive(Clone, Debug, Default)]
pub struct DynamicWaitGraph {
    num_vertices: usize,
    records: IdMap<Rec>,
    /// Vertex -> owning *blocked* message, dense ([`NO_OWNER`] = free).
    owner: Vec<MessageId>,
    /// Vertex -> blocked messages requesting it (reverse request index).
    waiters: Vec<Vec<MessageId>>,
    /// Records with a non-empty request set fully owned by blocked
    /// messages — the knot candidates. 0 certifies "no knot".
    s0: usize,
    /// Commutative per-record hash sum (population fold applied at query).
    fp_partial: u64,
    // Staged edits awaiting commit.
    staged: Vec<(MessageId, Staged)>,
    staged_pool: Vec<VertexId>,
    // Lazy verdict caches, invalidated only by commits that touch
    // S0-relevant state (see `mark_grow` / `mark_shrink`): `live` is the
    // boolean reduction verdict, `verdict_sets` the exact decomposition.
    live_stale: bool,
    live: bool,
    sets_stale: bool,
    verdict_sets: Vec<Vec<MessageId>>,
    // Scratch for the worklist reduction behind `has_knot`:
    // `red_epoch` stamps `Rec::red_gen` so no per-pass map is needed.
    red_epoch: u64,
    red_stack: Vec<MessageId>,
    red_chain: Vec<VertexId>,
    // Witness generation: records stamped `wit_gen == wit_epoch` form
    // the core certifying a cached `true` verdict. Bumped whenever a
    // verdict is re-established, so stale stamps can never match.
    wit_epoch: u64,
    // Records that entered S0 since the last verified `false` verdict —
    // any newly formed core must contain one of them (see `has_knot`).
    delta: Vec<MessageId>,
    probe_members: Vec<MessageId>,
    // Ids staged more than once in the current commit (rare; API-only).
    dup_buf: Vec<MessageId>,
    // Scratch for the lazy exact decomposition.
    graph: WaitGraph,
    scratch: DetectorScratch,
    sort_buf: Vec<MessageId>,
}

impl DynamicWaitGraph {
    /// An empty wait-state over `num_vertices` CWG vertices.
    pub fn new(num_vertices: usize) -> Self {
        DynamicWaitGraph {
            num_vertices,
            owner: vec![NO_OWNER; num_vertices],
            waiters: vec![Vec::new(); num_vertices],
            ..Default::default()
        }
    }

    /// Total vertex count (folds into the fingerprint).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of blocked messages currently tracked.
    pub fn num_blocked(&self) -> usize {
        self.records.len()
    }

    /// Order-independent 64-bit hash of the blocked wait-state —
    /// bit-identical to `SnapshotArena::fingerprint()` for the same state.
    pub fn fingerprint(&self) -> u64 {
        self.fp_partial
            ^ mix((self.records.len() as u64) << 32
                ^ self.num_vertices as u64
                ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// The tracked `(settled chain, requests)` of `id`, if blocked.
    pub fn record(&self, id: MessageId) -> Option<(&[VertexId], &[VertexId])> {
        self.records
            .get(&id)
            .map(|r| (r.chain.as_slice(), r.requests.as_slice()))
    }

    /// Tracked blocked message ids, ascending.
    pub fn blocked_ids(&self) -> Vec<MessageId> {
        let mut ids: Vec<MessageId> = self.records.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Stages the new state of a blocked message (chain must be
    /// non-empty; requests may be empty for fault-stranded messages).
    /// Takes effect at [`commit`](Self::commit).
    pub fn stage_blocked(&mut self, id: MessageId, chain: &[VertexId], requests: &[VertexId]) {
        debug_assert!(!chain.is_empty(), "a blocked message owns its head VC");
        let start = self.staged_pool.len() as u32;
        self.staged_pool.extend_from_slice(chain);
        self.staged_pool.extend_from_slice(requests);
        self.staged.push((
            id,
            Staged::Blocked {
                start,
                chain_len: chain.len() as u32,
                len: (chain.len() + requests.len()) as u32,
            },
        ));
    }

    /// Stages the removal of `id` (delivered, recovering, ejecting, or
    /// simply no longer blocked). Unknown ids are fine — the engine marks
    /// conservatively. Takes effect at [`commit`](Self::commit).
    pub fn stage_clear(&mut self, id: MessageId) {
        self.staged.push((id, Staged::Clear));
    }

    /// Applies every staged edit: phase 1 removes the old records of all
    /// staged messages, phase 2 inserts the new blocked states. At most
    /// one staged entry per id per commit (the engine's drain dedups).
    pub fn commit(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let mut staged = std::mem::take(&mut self.staged);
        let pool = std::mem::take(&mut self.staged_pool);
        // Drop reconciliation no-ops before touching any index: the
        // engine re-resolves conservatively-marked messages (fault
        // transitions mark *everything*), and an identical re-staging
        // must neither churn the indices nor invalidate the verdicts.
        //
        // The per-entry no-op test compares against pre-commit state
        // only, so an id staged more than once (a Clear + re-Block pair
        // in one commit — never from the engine's drain, but legal for
        // direct API users) must bypass the filter: dropping the Block
        // as "identical" while keeping its paired Clear would wrongly
        // remove the record.
        self.dup_buf.clear();
        self.dup_buf.extend(staged.iter().map(|(id, _)| *id));
        self.dup_buf.sort_unstable();
        let mut dups = 0;
        for i in 1..self.dup_buf.len() {
            if self.dup_buf[i] == self.dup_buf[i - 1]
                && (dups == 0 || self.dup_buf[dups - 1] != self.dup_buf[i])
            {
                self.dup_buf[dups] = self.dup_buf[i];
                dups += 1;
            }
        }
        self.dup_buf.truncate(dups);
        staged.retain(|(id, st)| match *st {
            _ if self.dup_buf.binary_search(id).is_ok() => true,
            Staged::Blocked {
                start,
                chain_len,
                len,
            } => {
                let s = start as usize;
                let c = s + chain_len as usize;
                self.records.get(id).is_none_or(|rec| {
                    rec.chain.as_slice() != &pool[s..c]
                        || rec.requests.as_slice() != &pool[c..s + len as usize]
                })
            }
            Staged::Clear => self.records.contains_key(id),
        });
        for (id, _) in &staged {
            self.remove_record(*id);
        }
        for (id, st) in &staged {
            if let Staged::Blocked {
                start,
                chain_len,
                len,
            } = *st
            {
                let s = start as usize;
                let c = s + chain_len as usize;
                self.insert_record(*id, &pool[s..c], &pool[c..s + len as usize]);
            }
        }
        self.staged_pool = pool;
        self.staged_pool.clear();
        self.staged = staged;
        self.staged.clear();
    }

    /// Removes `id`'s record and repairs the ownership / waiter indices
    /// and the S0 counters. No-op for untracked ids.
    ///
    /// Staleness: knots live entirely among S0 records (a vertex owned
    /// by a record with an escape can reach that escape, so it is never
    /// in a terminal component), so only S0-boundary events matter.
    /// Removals and S0-exits delete records or arcs, which cannot create
    /// a core from nothing — a `false` verdict survives every shrink,
    /// and a `true` verdict survives shrinks that miss the stamped
    /// witness core (its members and their mutual ownership are intact).
    fn remove_record(&mut self, id: MessageId) {
        let Some(rec) = self.records.remove(&id) else {
            return;
        };
        self.fp_partial = self.fp_partial.wrapping_sub(rec.hash);
        let mut touched = false;
        let mut wit_hit = false;
        if rec.in_s0() {
            self.s0 -= 1;
            touched = true;
            wit_hit |= rec.wit_gen == self.wit_epoch;
        }
        for &t in &rec.requests {
            self.waiters[t as usize].retain(|&w| w != id);
        }
        for &v in &rec.chain {
            // Only release vertices this record still owns: a same-commit
            // overwrite (or a mid-commit migration) may have reassigned one.
            if self.owner[v as usize] != id {
                continue;
            }
            self.owner[v as usize] = NO_OWNER;
            for i in 0..self.waiters[v as usize].len() {
                let w = self.waiters[v as usize][i];
                if let Some(r2) = self.records.get_mut(&w) {
                    if r2.in_s0() {
                        self.s0 -= 1;
                        touched = true;
                        wit_hit |= r2.wit_gen == self.wit_epoch;
                    }
                    r2.unowned += 1;
                }
            }
        }
        if touched {
            self.sets_stale = true;
            if self.live && wit_hit {
                self.live_stale = true;
                self.delta.clear();
            }
        }
    }

    /// Inserts a fresh record for `id` and repairs all indices.
    ///
    /// Staleness: insertions never remove ownership or arcs from
    /// surviving records (chains are owner-disjoint), so an existing
    /// core stays a core and a `true` verdict survives every grow. A
    /// `false` verdict is re-established by probing only the records
    /// that entered S0 (collected in `delta`) — any newly formed core
    /// must contain one of them (see [`has_knot`](Self::has_knot)).
    fn insert_record(&mut self, id: MessageId, chain: &[VertexId], requests: &[VertexId]) {
        // Defensive: a duplicate stage for one id keeps the last state.
        self.remove_record(id);
        let mut touched = false;
        let track_delta = !self.live_stale && !self.live;
        for &v in chain {
            let prev = std::mem::replace(&mut self.owner[v as usize], id);
            debug_assert!(
                prev == NO_OWNER,
                "vertex {v} owned by two blocked messages ({prev} and {id})"
            );
            for i in 0..self.waiters[v as usize].len() {
                let w = self.waiters[v as usize][i];
                if let Some(r2) = self.records.get_mut(&w) {
                    debug_assert!(r2.unowned > 0, "unowned counter underflow");
                    r2.unowned -= 1;
                    if r2.in_s0() {
                        self.s0 += 1;
                        touched = true;
                        if track_delta {
                            self.delta.push(w);
                        }
                    }
                }
            }
        }
        let mut unowned = 0u32;
        for &t in requests {
            if self.owner[t as usize] == NO_OWNER {
                unowned += 1;
            }
            self.waiters[t as usize].push(id);
        }
        let rec = Rec {
            chain: chain.to_vec(),
            requests: requests.to_vec(),
            unowned,
            hash: record_hash(id, chain, requests),
            red_gen: 0,
            wit_gen: 0,
        };
        self.fp_partial = self.fp_partial.wrapping_add(rec.hash);
        if rec.in_s0() {
            self.s0 += 1;
            touched = true;
            if track_delta {
                self.delta.push(id);
            }
        }
        self.records.insert(id, rec);
        if touched {
            self.sets_stale = true;
            // Runaway delta (e.g. a long no-verdict edit session through
            // the direct API): fall back to one full reduction.
            if self.delta.len() > 128 {
                self.live_stale = true;
                self.delta.clear();
            }
        }
    }

    /// Whether a knot (true deadlock) exists right now.
    ///
    /// Cost: O(1) when nothing S0-relevant changed since the last
    /// verdict (including every cycle of a frozen wedge — deadlocked
    /// messages emit no events), when `s0 == 0`, or when the change was
    /// one-sided in the verdict's favor (see the module docs); O(delta)
    /// when a `false` verdict only needs the new S0 entrants probed; and
    /// one full worklist reduction over the record table — no graph
    /// build — only when a shrink damaged the witness core. The
    /// reduction computes the greatest fixpoint of "records whose
    /// request targets are all owned by surviving records": that core is
    /// closed (no arcs leave it), every core vertex has an out-arc, so a
    /// non-empty core contains a non-trivial terminal SCC — and any knot's
    /// deadlock set is itself such a core. Core non-empty ⟺ knot.
    pub fn has_knot(&mut self) -> bool {
        if !self.sets_stale {
            debug_assert!(self.delta.is_empty());
            return !self.verdict_sets.is_empty();
        }
        if self.live_stale {
            self.live = self.compute_live();
            self.live_stale = false;
            self.delta.clear();
            if !self.live {
                // Kill lingering witness stamps from an older `true`.
                self.wit_epoch = self.wit_epoch.wrapping_add(1);
            }
        } else if !self.live && !self.delta.is_empty() {
            self.live = self.probe_delta();
        }
        self.live
    }

    /// The greatest-fixpoint reduction behind [`has_knot`](Self::has_knot).
    fn compute_live(&mut self) -> bool {
        if self.s0 == 0 {
            return false;
        }
        let gen = self.red_epoch.wrapping_add(1);
        self.red_epoch = gen;
        self.red_stack.clear();
        let mut alive = self.s0;
        // Seed: every record with an escape (an unowned request target,
        // or no requests at all) is reducible.
        for (&id, rec) in &self.records {
            if !rec.in_s0() {
                self.red_stack.push(id);
            }
        }
        // Reducing a record virtually frees its chain; a waiter on those
        // vertices gains a virtual escape and reduces in turn (one freed
        // target is enough — only the first touch matters).
        while let Some(id) = self.red_stack.pop() {
            self.red_chain.clear();
            self.red_chain.extend_from_slice(&self.records[&id].chain);
            for i in 0..self.red_chain.len() {
                let v = self.red_chain[i];
                for j in 0..self.waiters[v as usize].len() {
                    let w = self.waiters[v as usize][j];
                    let Some(rec) = self.records.get_mut(&w) else {
                        continue;
                    };
                    if !rec.in_s0() || rec.red_gen == gen {
                        continue; // seeded or already reduced
                    }
                    rec.red_gen = gen;
                    alive -= 1;
                    if alive == 0 {
                        return false; // whole S0 set reduced
                    }
                    self.red_stack.push(w);
                }
            }
        }
        // Fixpoint with survivors: stamp the unreduced S0 records as the
        // witness core so shrink-time invalidation can test membership.
        self.wit_epoch = self.wit_epoch.wrapping_add(1);
        let we = self.wit_epoch;
        for rec in self.records.values_mut() {
            if rec.red_gen != gen && rec.in_s0() {
                rec.wit_gen = we;
            }
        }
        true
    }

    /// Probes whether any record that entered S0 since the last verified
    /// `false` verdict now sits in a core. Sound and complete for that
    /// transition: a core's members' records and their mutual ownership
    /// are immutable while the core exists, so a core made only of
    /// records that were already in S0 (with unchanged arcs) at the last
    /// `false` verdict would have been a core back then. The probe walks
    /// the forward target-owner closure of each delta record: hitting a
    /// non-S0 owner proves an escape is reachable (not in any core);
    /// closing entirely inside S0 exhibits a core — a knot.
    fn probe_delta(&mut self) -> bool {
        'outer: for i in 0..self.delta.len() {
            let d = self.delta[i];
            match self.records.get_mut(&d) {
                Some(rec) if rec.in_s0() => {}
                _ => continue, // removed or left S0 again since
            }
            let gen = self.red_epoch.wrapping_add(1);
            self.red_epoch = gen;
            self.records.get_mut(&d).unwrap().red_gen = gen;
            self.red_stack.clear();
            self.red_stack.push(d);
            self.probe_members.clear();
            self.probe_members.push(d);
            while let Some(r) = self.red_stack.pop() {
                self.red_chain.clear();
                self.red_chain.extend_from_slice(&self.records[&r].requests);
                for j in 0..self.red_chain.len() {
                    let t = self.red_chain[j];
                    let o = self.owner[t as usize];
                    debug_assert!(o != NO_OWNER, "S0 closure with an unowned target");
                    let Some(orec) = self.records.get_mut(&o) else {
                        debug_assert!(false, "owned vertex without a live record");
                        continue 'outer;
                    };
                    if !orec.in_s0() {
                        continue 'outer; // escape reachable: d is in no core
                    }
                    if orec.red_gen != gen {
                        orec.red_gen = gen;
                        self.red_stack.push(o);
                        self.probe_members.push(o);
                    }
                }
            }
            // Closed all-S0 forward closure: a core. Stamp it as the
            // witness and report the knot.
            self.wit_epoch = self.wit_epoch.wrapping_add(1);
            let we = self.wit_epoch;
            for j in 0..self.probe_members.len() {
                let m = self.probe_members[j];
                if let Some(rec) = self.records.get_mut(&m) {
                    rec.wit_gen = we;
                }
            }
            self.delta.clear();
            return true;
        }
        self.delta.clear();
        false
    }

    /// The deadlock set of every current knot. Sets match
    /// [`WaitGraph::knot_deadlock_sets`] on a fresh full snapshot; with
    /// several coexisting knots the sets are ordered by their smallest
    /// member for determinism (the snapshot path orders by component
    /// emission instead).
    ///
    /// Cost: O(1) when nothing S0-relevant changed since the last
    /// decomposition or when `s0 == 0`; otherwise one Tarjan pass over
    /// the blocked-only graph.
    pub fn knot_deadlock_sets(&mut self) -> &[Vec<MessageId>] {
        if self.sets_stale {
            self.verdict_sets = self.compute_sets();
            self.sets_stale = false;
            debug_assert!(
                self.live_stale
                    || !self.delta.is_empty()
                    || self.live != self.verdict_sets.is_empty(),
                "reduction verdict disagrees with the exact decomposition"
            );
            self.live = !self.verdict_sets.is_empty();
            self.live_stale = false;
            self.delta.clear();
            // Re-establish the witness from the exact decomposition:
            // every deadlock set is a terminal SCC, hence itself a core.
            self.wit_epoch = self.wit_epoch.wrapping_add(1);
            if self.live {
                let we = self.wit_epoch;
                for s in &self.verdict_sets {
                    for m in s {
                        if let Some(rec) = self.records.get_mut(m) {
                            rec.wit_gen = we;
                        }
                    }
                }
            }
        }
        &self.verdict_sets
    }

    /// Exact knot decomposition of the blocked-only graph.
    fn compute_sets(&mut self) -> Vec<Vec<MessageId>> {
        if self.s0 == 0 {
            return Vec::new();
        }
        // Deterministic rebuild order (HashMap iteration is not).
        self.sort_buf.clear();
        self.sort_buf.extend(self.records.keys().copied());
        self.sort_buf.sort_unstable();
        self.graph.reset(self.num_vertices);
        for &id in &self.sort_buf {
            let rec = &self.records[&id];
            self.graph.add_chain(id, &rec.chain);
        }
        for &id in &self.sort_buf {
            let rec = &self.records[&id];
            if !rec.requests.is_empty() {
                self.graph.add_requests(id, &rec.requests);
            }
        }
        let mut sets = self.graph.knot_deadlock_sets(&mut self.scratch);
        sets.sort_unstable_by_key(|s| s.first().copied());
        sets
    }

    /// Compares this incrementally maintained state against a freshly
    /// built full-snapshot [`WaitGraph`], returning human-readable
    /// mismatches (empty = lockstep). The full graph also carries moving
    /// messages; agreement is defined on the blocked subset plus the knot
    /// verdict.
    pub fn diff_against_snapshot(&mut self, full: &WaitGraph) -> Vec<String> {
        let mut out = Vec::new();
        // Every blocked message of the snapshot (non-empty requests) must
        // be tracked verbatim. Blocked messages with empty request sets
        // are indistinguishable from moving ones in the bare graph; the
        // fingerprint equality in the engine-level tests covers those.
        let mut snapshot_blocked = 0usize;
        for m in full.blocked_messages() {
            snapshot_blocked += 1;
            match self.records.get(&m) {
                None => out.push(format!("blocked message {m} missing from dynamic state")),
                Some(rec) => {
                    if full.chain(m) != Some(rec.chain.as_slice()) {
                        out.push(format!(
                            "message {m} chain: snapshot={:?} dynamic={:?}",
                            full.chain(m),
                            rec.chain
                        ));
                    }
                    if full.requests_of(m) != Some(rec.requests.as_slice()) {
                        out.push(format!(
                            "message {m} requests: snapshot={:?} dynamic={:?}",
                            full.requests_of(m),
                            rec.requests
                        ));
                    }
                }
            }
        }
        for (&m, rec) in &self.records {
            if !rec.requests.is_empty() && full.requests_of(m).is_none() {
                out.push(format!(
                    "dynamic tracks {m} but the snapshot does not block it"
                ));
            }
        }
        let _ = snapshot_blocked;
        // Verdicts must agree set-for-set (order-independently).
        let mut fresh = DetectorScratch::new();
        let mut want: Vec<Vec<MessageId>> = full
            .knot_deadlock_sets(&mut fresh)
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s
            })
            .collect();
        want.sort_unstable();
        let mut got: Vec<Vec<MessageId>> = self
            .knot_deadlock_sets()
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.sort_unstable();
                s
            })
            .collect();
        got.sort_unstable();
        if want != got {
            out.push(format!(
                "knot deadlock sets: snapshot={want:?} dynamic={got:?}"
            ));
        }
        out
    }

    /// Verifies invariants 2–5 against the record table from scratch
    /// (tests; O(state)).
    pub fn check_invariants(&self) {
        let mut s0 = 0usize;
        let mut fp = 0u64;
        for (&id, rec) in &self.records {
            assert!(!rec.chain.is_empty(), "record {id} with an empty chain");
            for &v in &rec.chain {
                assert_eq!(self.owner[v as usize], id, "owner index out of sync");
            }
            let unowned = rec
                .requests
                .iter()
                .filter(|&&t| self.owner[t as usize] == NO_OWNER)
                .count() as u32;
            assert_eq!(rec.unowned, unowned, "unowned counter drifted for {id}");
            for &t in &rec.requests {
                assert!(
                    self.waiters[t as usize].contains(&id),
                    "waiter index missing {id} -> {t}"
                );
            }
            assert_eq!(rec.hash, record_hash(id, &rec.chain, &rec.requests));
            fp = fp.wrapping_add(rec.hash);
            if rec.in_s0() {
                s0 += 1;
            }
        }
        for (v, &m) in self.owner.iter().enumerate() {
            assert!(
                m == NO_OWNER
                    || self
                        .records
                        .get(&m)
                        .is_some_and(|r| r.chain.contains(&(v as VertexId))),
                "owner index holds a stale vertex {v}"
            );
        }
        for (t, ws) in self.waiters.iter().enumerate() {
            for w in ws {
                assert!(
                    self.records
                        .get(w)
                        .is_some_and(|r| r.requests.contains(&(t as VertexId))),
                    "waiter index holds a stale edge {w} -> {t}"
                );
            }
        }
        assert_eq!(self.s0, s0, "s0 counter drifted");
        assert_eq!(self.fp_partial, fp, "fingerprint partial sum drifted");

        // Independent greatest-fixpoint core (naive iteration): non-empty
        // iff a knot exists. Any fresh cached verdict must agree.
        let mut removed: std::collections::HashSet<MessageId> = std::collections::HashSet::new();
        loop {
            let mut changed = false;
            for (&id, rec) in &self.records {
                if removed.contains(&id) {
                    continue;
                }
                let escape = rec.requests.is_empty()
                    || rec.requests.iter().any(|&t| {
                        let m = self.owner[t as usize];
                        m == NO_OWNER || removed.contains(&m)
                    });
                if escape {
                    removed.insert(id);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let core_live = removed.len() < self.records.len();
        if !self.live_stale {
            if self.live {
                // A cached `true` survives commits untouched by probes.
                assert!(core_live, "cached true verdict drifted");
            } else if self.delta.is_empty() {
                // A cached `false` is only authoritative once the
                // pending S0-entry probes have been consumed.
                assert!(!core_live, "cached false verdict drifted");
            }
        }
        if !self.sets_stale {
            assert_eq!(
                !self.verdict_sets.is_empty(),
                core_live,
                "cached deadlock sets drifted from the live core"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure-1 ring both ways and checks lockstep.
    fn figure1_full() -> WaitGraph {
        let mut g = WaitGraph::new(10);
        g.add_chain(1, &[1, 2]);
        g.add_chain(2, &[3, 4, 5]);
        g.add_chain(3, &[6, 7, 0]);
        g.add_chain(4, &[8]); // moving
        g.add_chain(5, &[9]); // moving
        g.add_requests(1, &[3]);
        g.add_requests(2, &[6]);
        g.add_requests(3, &[1]);
        g
    }

    fn stage_figure1(d: &mut DynamicWaitGraph) {
        d.stage_blocked(1, &[1, 2], &[3]);
        d.stage_blocked(2, &[3, 4, 5], &[6]);
        d.stage_blocked(3, &[6, 7, 0], &[1]);
        d.commit();
    }

    #[test]
    fn figure1_knot_detected_incrementally() {
        let mut d = DynamicWaitGraph::new(10);
        stage_figure1(&mut d);
        d.check_invariants();
        assert_eq!(d.num_blocked(), 3);
        assert!(d.has_knot());
        assert_eq!(d.knot_deadlock_sets(), &[vec![1, 2, 3]]);
        assert!(d.diff_against_snapshot(&figure1_full()).is_empty());
    }

    #[test]
    fn s0_certificate_blocks_free_targets() {
        let mut d = DynamicWaitGraph::new(10);
        // m3 has an escape to free vertex 9: no knot, and s0 == 0 proves
        // it without any graph work.
        d.stage_blocked(1, &[1, 2], &[3]);
        d.stage_blocked(2, &[3, 4, 5], &[6]);
        d.stage_blocked(3, &[6, 7, 0], &[1, 9]);
        d.commit();
        d.check_invariants();
        assert_eq!(d.s0, 2, "m1 and m2 wait only on blocked-owned targets");
        assert!(!d.has_knot());
    }

    #[test]
    fn unblock_breaks_the_knot() {
        let mut d = DynamicWaitGraph::new(10);
        stage_figure1(&mut d);
        assert!(d.has_knot());
        // m2 acquires vertex 6 (recovery or a freed VC): it stops being
        // blocked from the detector's point of view for a cycle.
        d.stage_clear(2);
        d.commit();
        d.check_invariants();
        assert!(!d.has_knot());
        assert_eq!(d.num_blocked(), 2);
        // ... and re-blocks one hop further along, now waiting on the
        // free vertex 8: its escape keeps the graph knot-free.
        d.stage_blocked(2, &[3, 4, 5, 9], &[8]);
        d.commit();
        d.check_invariants();
        assert!(!d.has_knot(), "m2 escapes to the free vertex 8");
    }

    #[test]
    fn same_cycle_vc_migration_is_order_insensitive() {
        // Vertex 4 migrates from m1 (released, shorter chain) to m2
        // (acquired) within one commit, staged in both orders.
        for flip in [false, true] {
            let mut d = DynamicWaitGraph::new(8);
            d.stage_blocked(1, &[3, 4], &[5]);
            d.stage_blocked(2, &[5, 6], &[4]);
            d.commit();
            assert!(d.has_knot());
            let stage_a = |d: &mut DynamicWaitGraph| d.stage_blocked(1, &[3], &[5]);
            let stage_b = |d: &mut DynamicWaitGraph| d.stage_blocked(2, &[5, 6, 4], &[7]);
            if flip {
                stage_b(&mut d);
                stage_a(&mut d);
            } else {
                stage_a(&mut d);
                stage_b(&mut d);
            }
            d.commit();
            d.check_invariants();
            assert!(!d.has_knot());
            assert_eq!(d.record(2).unwrap().0, &[5, 6, 4]);
        }
    }

    #[test]
    fn fingerprint_matches_identical_rebuild() {
        let mut a = DynamicWaitGraph::new(16);
        let mut b = DynamicWaitGraph::new(16);
        a.stage_blocked(7, &[0, 1], &[4, 5]);
        a.stage_blocked(9, &[4], &[]);
        a.commit();
        // Same state reached along a different history.
        b.stage_blocked(9, &[2], &[3]);
        b.stage_blocked(7, &[0, 1], &[4, 5]);
        b.commit();
        b.stage_blocked(9, &[4], &[]);
        b.commit();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.check_invariants();
        b.check_invariants();
        // Different population ⇒ different fingerprint.
        b.stage_clear(9);
        b.commit();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn verdict_cache_is_invalidated_by_edits() {
        let mut d = DynamicWaitGraph::new(6);
        d.stage_blocked(1, &[0, 1], &[2]);
        d.stage_blocked(2, &[2, 3], &[0]);
        d.commit();
        assert!(d.has_knot());
        d.stage_clear(1);
        d.commit();
        assert!(!d.has_knot());
        d.stage_blocked(1, &[0, 1], &[2]);
        d.commit();
        assert!(d.has_knot());
    }

    #[test]
    fn empty_requests_count_toward_population_not_knots() {
        let mut d = DynamicWaitGraph::new(8);
        // A fault-stranded blocked message: chain only, a CWG sink.
        d.stage_blocked(3, &[1, 2], &[]);
        d.commit();
        d.check_invariants();
        assert_eq!(d.num_blocked(), 1);
        assert!(!d.has_knot());
    }

    #[test]
    fn two_independent_knots_ordered_by_smallest_member() {
        let mut d = DynamicWaitGraph::new(12);
        d.stage_blocked(5, &[4, 5], &[6]);
        d.stage_blocked(6, &[6, 7], &[4]);
        d.stage_blocked(1, &[0, 1], &[2]);
        d.stage_blocked(2, &[2, 3], &[0]);
        d.commit();
        assert_eq!(d.knot_deadlock_sets(), &[vec![1, 2], vec![5, 6]]);
    }
}
