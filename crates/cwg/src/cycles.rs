//! Capped elementary-cycle counting (Johnson's algorithm).

use crate::adjacency::Adjacency;
use crate::scc::{scc, SccScratch};
use crate::VertexId;

/// A possibly-capped cycle count.
///
/// Deep in saturation the paper observes "hundreds of thousands" of resource
/// dependency cycles; enumeration is exponential in the worst case, so the
/// counter saturates at a configurable cap and reports that it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleCount {
    /// The exact number of elementary cycles.
    Exact(u64),
    /// At least this many cycles exist (enumeration stopped at the cap).
    AtLeast(u64),
}

impl CycleCount {
    /// The counted value (a lower bound when capped).
    pub fn value(self) -> u64 {
        match self {
            CycleCount::Exact(v) | CycleCount::AtLeast(v) => v,
        }
    }

    /// Whether enumeration hit the cap.
    pub fn is_capped(self) -> bool {
        matches!(self, CycleCount::AtLeast(_))
    }

    /// Saturating combination of counts over disjoint subgraphs.
    pub fn combine(self, other: CycleCount) -> CycleCount {
        let v = self.value() + other.value();
        if self.is_capped() || other.is_capped() {
            CycleCount::AtLeast(v)
        } else {
            CycleCount::Exact(v)
        }
    }
}

impl std::fmt::Display for CycleCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CycleCount::Exact(v) => write!(f, "{v}"),
            CycleCount::AtLeast(v) => write!(f, ">={v}"),
        }
    }
}

/// Counts elementary cycles of `adj`, stopping once `cap` have been found.
///
/// Cycles never span strongly connected components, so the graph is first
/// decomposed with [`scc`] and Johnson's algorithm runs inside each
/// non-trivial component — on CWG snapshots the overwhelming majority of
/// vertices sit in trivial components, making this far cheaper than running
/// Johnson on the full vertex range.
pub fn count_cycles<A: Adjacency + ?Sized>(adj: &A, cap: u64) -> CycleCount {
    let mut comps = SccScratch::new();
    comps.run(adj);
    let mut total = CycleCount::Exact(0);
    for comp in comps.components() {
        let has_self_loop = comp.len() == 1 && adj.neighbors(comp[0]).contains(&comp[0]);
        if comp.len() < 2 && !has_self_loop {
            continue;
        }
        let remaining = cap.saturating_sub(total.value());
        if remaining == 0 {
            return CycleCount::AtLeast(total.value());
        }
        let local = count_in_component(adj, comp, remaining);
        total = total.combine(local);
    }
    total
}

/// Johnson's algorithm restricted to one SCC, vertices remapped to `0..m`.
fn count_in_component<A: Adjacency + ?Sized>(adj: &A, comp: &[VertexId], cap: u64) -> CycleCount {
    let m = comp.len();
    let mut index_of = std::collections::HashMap::with_capacity(m);
    for (i, &v) in comp.iter().enumerate() {
        index_of.insert(v, i as u32);
    }
    // Local adjacency, keeping only intra-component edges.
    let local: Vec<Vec<u32>> = comp
        .iter()
        .map(|&v| {
            adj.neighbors(v)
                .iter()
                .filter_map(|t| index_of.get(t).copied())
                .collect()
        })
        .collect();

    let mut count = 0u64;
    let mut capped = false;

    // For ascending start vertex s, count the cycles whose minimum vertex is
    // s: explore only the sub-SCC of s within the subgraph induced on
    // {s..m}, with Johnson's blocked-set pruning.
    'starts: for s in 0..m as u32 {
        // SCC of the induced subgraph {s..}.
        let sub: Vec<Vec<u32>> = (0..m as u32)
            .map(|v| {
                if v < s {
                    Vec::new()
                } else {
                    local[v as usize]
                        .iter()
                        .copied()
                        .filter(|&t| t >= s)
                        .collect()
                }
            })
            .collect();
        let sub_comps = scc(&sub);
        let s_comp = sub_comps.comp_of[s as usize];
        let in_k: Vec<bool> = (0..m as u32)
            .map(|v| v >= s && sub_comps.comp_of[v as usize] == s_comp)
            .collect();
        if sub_comps.components[s_comp as usize].len() < 2 && !local[s as usize].contains(&s) {
            continue;
        }

        let mut blocked = vec![false; m];
        let mut b_sets: Vec<Vec<u32>> = vec![Vec::new(); m];
        // Explicit-stack version of Johnson's CIRCUIT(v): each frame is
        // (vertex, next-edge cursor, found-cycle-below flag).
        let mut frames: Vec<(u32, usize, bool)> = vec![(s, 0, false)];
        blocked[s as usize] = true;

        while let Some(&mut (v, ref mut ei, ref mut found)) = frames.last_mut() {
            let nexts = &local[v as usize];
            let mut descended = false;
            while *ei < nexts.len() {
                let w = nexts[*ei];
                *ei += 1;
                if !in_k[w as usize] {
                    continue;
                }
                if w == s {
                    count += 1;
                    *found = true;
                    if count >= cap {
                        capped = true;
                        break 'starts;
                    }
                } else if !blocked[w as usize] {
                    blocked[w as usize] = true;
                    frames.push((w, 0, false));
                    descended = true;
                    break;
                }
            }
            if descended {
                continue;
            }
            // Finished v: unwind one frame.
            let (v, _, found) = frames.pop().unwrap();
            if found {
                unblock(v, &mut blocked, &mut b_sets);
            } else {
                for &w in &local[v as usize] {
                    if in_k[w as usize] && !b_sets[w as usize].contains(&v) {
                        b_sets[w as usize].push(v);
                    }
                }
            }
            if let Some(&mut (_, _, ref mut parent_found)) = frames.last_mut() {
                *parent_found |= found;
            }
        }
    }

    if capped {
        CycleCount::AtLeast(count)
    } else {
        CycleCount::Exact(count)
    }
}

fn unblock(v: u32, blocked: &mut [bool], b_sets: &mut [Vec<u32>]) {
    // Iterative unblock cascade.
    let mut stack = vec![v];
    while let Some(v) = stack.pop() {
        if !blocked[v as usize] {
            continue;
        }
        blocked[v as usize] = false;
        for w in std::mem::take(&mut b_sets[v as usize]) {
            stack.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_acyclic() {
        let empty: &[Vec<u32>] = &[];
        assert_eq!(count_cycles(empty, 100), CycleCount::Exact(0));
        let chain = vec![vec![1], vec![2], vec![]];
        assert_eq!(count_cycles(&chain, 100), CycleCount::Exact(0));
    }

    #[test]
    fn single_cycle() {
        let ring: Vec<Vec<u32>> = (0..5u32).map(|v| vec![(v + 1) % 5]).collect();
        assert_eq!(count_cycles(&ring, 100), CycleCount::Exact(1));
    }

    #[test]
    fn self_loop_counts() {
        let adj = vec![vec![0u32]];
        assert_eq!(count_cycles(&adj, 100), CycleCount::Exact(1));
    }

    #[test]
    fn two_disjoint_cycles() {
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        assert_eq!(count_cycles(&adj, 100), CycleCount::Exact(2));
    }

    #[test]
    fn complete_digraph_k3() {
        // K3 with all arcs: cycles = three 2-cycles + two 3-cycles = 5.
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(count_cycles(&adj, 100), CycleCount::Exact(5));
    }

    #[test]
    fn complete_digraph_k4() {
        // K4: 6 two-cycles + 8 three-cycles + 6 four-cycles = 20.
        let adj: Vec<Vec<u32>> = (0..4u32)
            .map(|v| (0..4u32).filter(|&w| w != v).collect())
            .collect();
        assert_eq!(count_cycles(&adj, 1000), CycleCount::Exact(20));
    }

    #[test]
    fn cap_reported() {
        let adj: Vec<Vec<u32>> = (0..4u32)
            .map(|v| (0..4u32).filter(|&w| w != v).collect())
            .collect();
        let c = count_cycles(&adj, 7);
        assert!(c.is_capped());
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn figure_three_knot_density() {
        // Figure 3b's knot: 8 vertices {1,3,5,7,9,11,13,15} remapped to 0..8,
        // each blocked message waits for two VCs owned by neighbours around
        // the square. Construct the same shape: v -> v+1 and v -> v+3 mod 8
        // is a stand-in with multiple overlapping cycles; just verify the
        // counter sees more than one cycle in a multi-cycle knot.
        let adj: Vec<Vec<u32>> = (0..8u32).map(|v| vec![(v + 1) % 8, (v + 3) % 8]).collect();
        let c = count_cycles(&adj, 10_000);
        assert!(!c.is_capped());
        assert!(c.value() > 1);
    }

    #[test]
    fn cycles_across_bridge_not_double_counted() {
        // 0<->1 -> 2<->3: exactly two 2-cycles.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        assert_eq!(count_cycles(&adj, 100), CycleCount::Exact(2));
    }

    #[test]
    fn combine_saturates() {
        let a = CycleCount::Exact(3);
        let b = CycleCount::AtLeast(5);
        assert_eq!(a.combine(b), CycleCount::AtLeast(8));
        assert_eq!(format!("{}", a.combine(b)), ">=8");
    }

    /// Brute-force reference: enumerate cycles by DFS over all simple paths.
    fn brute_force(adj: &[Vec<u32>]) -> u64 {
        let n = adj.len();
        let mut count = 0u64;
        fn dfs(adj: &[Vec<u32>], start: u32, v: u32, visited: &mut Vec<bool>, count: &mut u64) {
            for &w in &adj[v as usize] {
                if w == start {
                    *count += 1;
                } else if w > start && !visited[w as usize] {
                    visited[w as usize] = true;
                    dfs(adj, start, w, visited, count);
                    visited[w as usize] = false;
                }
            }
        }
        for s in 0..n as u32 {
            let mut visited = vec![false; n];
            visited[s as usize] = true;
            dfs(adj, s, s, &mut visited, &mut count);
        }
        count
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(2..9);
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (v, row) in adj.iter_mut().enumerate() {
                for w in 0..n as u32 {
                    if v as u32 != w && rng.gen_bool(0.3) {
                        row.push(w);
                    }
                }
            }
            let expect = brute_force(&adj);
            let got = count_cycles(&adj, u64::MAX);
            assert_eq!(got, CycleCount::Exact(expect), "adj={adj:?}");
        }
    }
}
