//! Read-only adjacency abstraction shared by the SCC, knot, and cycle
//! algorithms, plus a reusable CSR (compressed sparse row) materialization.
//!
//! The detection hot path builds the CSR **once** per epoch from the
//! [`WaitGraph`](crate::WaitGraph) and shares it between knot analysis and
//! cycle counting, instead of each algorithm materializing its own
//! `Vec<Vec<VertexId>>` copy.

use crate::VertexId;

/// Anything the graph algorithms can walk: a vertex count plus per-vertex
/// successor slices.
pub trait Adjacency {
    /// Number of vertices (`0..n`).
    fn num_vertices(&self) -> usize;

    /// Successors of `v`.
    fn neighbors(&self, v: VertexId) -> &[VertexId];
}

impl Adjacency for [Vec<VertexId>] {
    fn num_vertices(&self) -> usize {
        self.len()
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self[v as usize]
    }
}

impl Adjacency for Vec<Vec<VertexId>> {
    fn num_vertices(&self) -> usize {
        self.len()
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self[v as usize]
    }
}

/// Reusable flat adjacency: `targets[offsets[v]..offsets[v+1]]` are the
/// successors of `v`. Refilled in place each epoch, so the steady state
/// performs no allocation.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<VertexId>,
}

impl Csr {
    /// An empty CSR; capacities grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to an edgeless graph over `n` vertices, keeping capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        self.targets.clear();
    }

    /// Appends the successor list of the next vertex (vertices must be
    /// pushed in ascending order, one call per vertex).
    pub(crate) fn push_vertex(&mut self, successors: impl IntoIterator<Item = VertexId>) {
        self.targets.extend(successors);
        self.offsets.push(self.targets.len() as u32);
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

impl Adjacency for Csr {
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.targets[s..e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trip() {
        let lists: Vec<Vec<VertexId>> = vec![vec![1, 2], vec![], vec![0]];
        let mut csr = Csr::new();
        csr.reset(lists.len());
        for l in &lists {
            csr.push_vertex(l.iter().copied());
        }
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 3);
        for v in 0..3u32 {
            assert_eq!(csr.neighbors(v), lists.neighbors(v));
        }
    }

    #[test]
    fn reset_reuses_storage() {
        let mut csr = Csr::new();
        csr.reset(2);
        csr.push_vertex([1]);
        csr.push_vertex([0, 1]);
        let cap_t = csr.targets.capacity();
        csr.reset(2);
        csr.push_vertex([]);
        csr.push_vertex([0]);
        assert_eq!(csr.num_vertices(), 2);
        assert_eq!(csr.neighbors(0), &[] as &[VertexId]);
        assert_eq!(csr.neighbors(1), &[0]);
        assert!(csr.targets.capacity() >= cap_t.min(2));
    }
}
