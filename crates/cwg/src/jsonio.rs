//! Minimal JSON reading and writing for incident artifacts.
//!
//! Hand-rolled on purpose (the build environment has no serializer
//! dependency): a small value tree, a recursive-descent parser, and a
//! writer. Integers are kept as `u64` so message ids, cycles, seeds, and
//! fingerprints survive a round trip bit-exactly; floats are printed with
//! Rust's shortest-round-trip formatting, so they round-trip too.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer token (the common case for ids and counters).
    U64(u64),
    /// Any other numeric token (negative, fractional, exponent).
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved, which keeps serialization deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`value.to_string()` via [`std::fmt::Display`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
                    offset: start,
                    message: "invalid UTF-8".into(),
                })?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }
}

/// Convenience constructor for an object.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience constructor for an array of `u64`s.
pub fn u64_arr(values: impl IntoIterator<Item = u64>) -> Json {
    Json::Arr(values.into_iter().map(Json::U64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(parse("-1.5").unwrap(), Json::F64(-1.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn u64_is_exact() {
        let big = u64::MAX - 1;
        let v = parse(&format!("{big}")).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let v = Json::Str(s.to_string());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = obj(vec![
            ("id", Json::U64(7)),
            ("label", Json::Str("uni-8ary2 \"DOR\"".into())),
            ("chain", u64_arr([1, 2, 3])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "nested",
                Json::Arr(vec![obj(vec![("x", Json::F64(0.5))]), Json::U64(9)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\": 3, \"f\": 2.5, \"s\": \"x\"}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
