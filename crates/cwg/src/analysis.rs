//! Knot detection and deadlock classification.

use crate::adjacency::{Adjacency, Csr};
use crate::cycles::{count_cycles, CycleCount};
use crate::graph::{MessageId, VertexId, WaitGraph};
use crate::scc::SccScratch;
use std::collections::HashSet;

/// Deadlock taxonomy of §2.2: a knot containing exactly one elementary
/// cycle is a *single-cycle deadlock*; more are *multi-cycle*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockKind {
    SingleCycle,
    MultiCycle,
}

/// Classification of blocked-but-not-deadlocked messages waiting on
/// deadlocked resources (§2.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DependentKind {
    /// Every requested VC leads into a knot: the message cannot proceed
    /// until recovery resolves the deadlock.
    Committed,
    /// At least one requested VC does not lead into a knot — the message
    /// may proceed through an alternative resource.
    Transient,
}

/// One true deadlock: a knot of the CWG with its derived descriptors.
#[derive(Clone, Debug)]
pub struct Deadlock {
    /// The knot vertices (every vertex reaches exactly this set).
    pub knot: Vec<VertexId>,
    /// Messages owning at least one knot vertex. Removing any one of these
    /// (the recovery victim) breaks the knot; removing a merely *dependent*
    /// message would not.
    pub deadlock_set: Vec<MessageId>,
    /// Every VC owned by a deadlock-set message (the paper's "resource
    /// set", e.g. 8 channels for the 4-message knot of Figure 2).
    pub resource_set: Vec<VertexId>,
    /// Number of elementary cycles inside the knot.
    pub cycle_density: CycleCount,
}

impl Deadlock {
    /// Single- vs multi-cycle classification.
    pub fn kind(&self) -> DeadlockKind {
        if self.cycle_density.value() <= 1 && !self.cycle_density.is_capped() {
            DeadlockKind::SingleCycle
        } else {
            DeadlockKind::MultiCycle
        }
    }
}

/// Full analysis of one CWG snapshot.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Every knot in the snapshot (usually zero or one; independent knots
    /// can coexist in disconnected regions).
    pub deadlocks: Vec<Deadlock>,
    /// Blocked messages outside every deadlock set that wait (directly or
    /// transitively) on deadlocked resources.
    pub dependent: Vec<(MessageId, DependentKind)>,
    /// Number of blocked messages in the snapshot.
    pub num_blocked: usize,
}

impl Analysis {
    /// True when at least one knot (true deadlock) exists.
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }
}

/// Reusable working storage for the per-epoch detection pass.
///
/// Holds the epoch's CSR adjacency (built once from the [`WaitGraph`] and
/// shared by knot analysis, cycle counting, and the recovery loop's
/// re-analyses) plus Tarjan scratch and the terminal-component marks. On a
/// knot-free epoch [`WaitGraph::analyze_with`] performs no heap allocation
/// once capacities have warmed up.
#[derive(Clone, Debug, Default)]
pub struct DetectorScratch {
    csr: Csr,
    scc: SccScratch,
    terminal: Vec<bool>,
}

impl DetectorScratch {
    /// Empty scratch; capacities grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CSR adjacency of the most recently analyzed graph (valid until
    /// that graph is mutated or another graph is analyzed). Lets callers
    /// run [`count_cycles`] on the epoch's adjacency without a rebuild.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Rebuilds the CSR from `g`, decomposes it, and marks which components
    /// are terminal (no leaving arc). Returns the component count.
    fn decompose(&mut self, g: &WaitGraph) -> usize {
        g.build_csr(&mut self.csr);
        self.scc.run(&self.csr);
        let nc = self.scc.num_components();
        self.terminal.clear();
        self.terminal.resize(nc, true);
        for v in 0..self.csr.num_vertices() as u32 {
            let cv = self.scc.comp_of(v);
            for &w in self.csr.neighbors(v) {
                if self.scc.comp_of(w) != cv {
                    self.terminal[cv as usize] = false;
                }
            }
        }
        nc
    }

    /// Whether component `ci` is a knot: terminal and non-trivial (more
    /// than one vertex, or a single vertex with a self-loop).
    fn is_knot(&self, ci: usize) -> bool {
        if !self.terminal[ci] {
            return false;
        }
        let comp = self.scc.component(ci as u32);
        comp.len() >= 2 || self.csr.neighbors(comp[0]).contains(&comp[0])
    }
}

impl WaitGraph {
    /// Detects every knot and classifies the snapshot.
    ///
    /// Convenience wrapper over [`analyze_with`](Self::analyze_with) that
    /// allocates fresh scratch; the detection loop holds a
    /// [`DetectorScratch`] across epochs instead.
    pub fn analyze(&self, density_cap: u64) -> Analysis {
        let mut scratch = DetectorScratch::new();
        self.analyze_with(density_cap, &mut scratch)
    }

    /// Detects every knot and classifies the snapshot, reusing `scratch`.
    ///
    /// A knot is a **non-trivial terminal SCC**: strongly connected (so every
    /// vertex reaches every other), with no arc leaving the component (so
    /// the reachable set of each member is exactly the component). This is
    /// the necessary-and-sufficient deadlock condition of \[6\] given a
    /// connected routing function.
    ///
    /// `density_cap` bounds the per-knot elementary-cycle enumeration.
    pub fn analyze_with(&self, density_cap: u64, scratch: &mut DetectorScratch) -> Analysis {
        let nc = scratch.decompose(self);

        let mut deadlocks = Vec::new();
        let mut deadlocked_msgs: HashSet<MessageId> = HashSet::new();
        let mut knot_vertices: Vec<VertexId> = Vec::new();
        for ci in 0..nc {
            if !scratch.is_knot(ci) {
                continue;
            }
            let mut knot = scratch.scc.component(ci as u32).to_vec();
            knot.sort_unstable();
            knot_vertices.extend_from_slice(&knot);

            let mut dset: Vec<MessageId> = knot.iter().filter_map(|&v| self.owner(v)).collect();
            dset.sort_unstable();
            dset.dedup();
            deadlocked_msgs.extend(dset.iter().copied());

            let mut rset: Vec<VertexId> = dset
                .iter()
                .flat_map(|m| self.chain(*m).unwrap_or(&[]).iter().copied())
                .collect();
            rset.sort_unstable();
            rset.dedup();

            // Knot-restricted adjacency for the density count.
            let knot_set: HashSet<VertexId> = knot.iter().copied().collect();
            let sub: Vec<Vec<VertexId>> = (0..scratch.csr.num_vertices() as u32)
                .map(|v| {
                    if knot_set.contains(&v) {
                        scratch
                            .csr
                            .neighbors(v)
                            .iter()
                            .copied()
                            .filter(|t| knot_set.contains(t))
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let cycle_density = count_cycles(&sub, density_cap);

            deadlocks.push(Deadlock {
                knot,
                deadlock_set: dset,
                resource_set: rset,
                cycle_density,
            });
        }

        // Dependent census — only meaningful (and only paid for) when a
        // knot exists: reverse reachability from knot vertices tells which
        // blocked messages wait into a deadlock.
        let mut dependent = Vec::new();
        if !deadlocks.is_empty() {
            let n = scratch.csr.num_vertices();
            let mut radj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            for v in 0..n as u32 {
                for &w in scratch.csr.neighbors(v) {
                    radj[w as usize].push(v);
                }
            }
            let mut reaches_knot = vec![false; n];
            let mut stack: Vec<VertexId> = knot_vertices.clone();
            for &v in &knot_vertices {
                reaches_knot[v as usize] = true;
            }
            while let Some(v) = stack.pop() {
                for &p in &radj[v as usize] {
                    if !reaches_knot[p as usize] {
                        reaches_knot[p as usize] = true;
                        stack.push(p);
                    }
                }
            }

            for msg in self.blocked_messages() {
                if deadlocked_msgs.contains(&msg) {
                    continue;
                }
                let reqs = self.requests_of(msg).unwrap();
                let hits = reqs.iter().filter(|&&t| reaches_knot[t as usize]).count();
                if hits == 0 {
                    continue;
                }
                let kind = if hits == reqs.len() {
                    DependentKind::Committed
                } else {
                    DependentKind::Transient
                };
                dependent.push((msg, kind));
            }
            dependent.sort_unstable_by_key(|&(m, _)| m);
        }

        Analysis {
            deadlocks,
            dependent,
            num_blocked: self.num_blocked(),
        }
    }

    /// The deadlock set of every knot, in component-emission order — the
    /// slimmed re-analysis the recovery loop runs after dropping victims'
    /// requests in place (it only needs new victims, not knot descriptors
    /// or the dependent census).
    pub fn knot_deadlock_sets(&self, scratch: &mut DetectorScratch) -> Vec<Vec<MessageId>> {
        let nc = scratch.decompose(self);
        let mut sets = Vec::new();
        for ci in 0..nc {
            if !scratch.is_knot(ci) {
                continue;
            }
            let mut dset: Vec<MessageId> = scratch
                .scc
                .component(ci as u32)
                .iter()
                .filter_map(|&v| self.owner(v))
                .collect();
            dset.sort_unstable();
            dset.dedup();
            sets.push(dset);
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three messages in a ring, single VC per hop: the Figure 1 shape.
    fn figure1_like() -> WaitGraph {
        let mut g = WaitGraph::new(10);
        // m1 owns 1,2 and wants 3; m2 owns 3,4,5 and wants 6;
        // m3 owns 6,7,0 and wants 1. m4/m5 own 8,9 and are moving.
        g.add_chain(1, &[1, 2]);
        g.add_chain(2, &[3, 4, 5]);
        g.add_chain(3, &[6, 7, 0]);
        g.add_chain(4, &[8]);
        g.add_chain(5, &[9]);
        g.add_requests(1, &[3]);
        g.add_requests(2, &[6]);
        g.add_requests(3, &[1]);
        g
    }

    #[test]
    fn figure1_single_cycle_deadlock() {
        let a = figure1_like().analyze(1000);
        assert!(a.has_deadlock());
        assert_eq!(a.deadlocks.len(), 1);
        let d = &a.deadlocks[0];
        assert_eq!(d.knot, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(d.deadlock_set, vec![1, 2, 3]);
        assert_eq!(d.resource_set, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(d.cycle_density, CycleCount::Exact(1));
        assert_eq!(d.kind(), DeadlockKind::SingleCycle);
        assert!(a.dependent.is_empty());
        assert_eq!(a.num_blocked, 3);
    }

    #[test]
    fn escape_resource_prevents_deadlock() {
        // Same ring, but m3 additionally waits for free vertex 8's twin 9?
        // No: give m3 an alternative request to an *unowned* vertex — the
        // knot condition fails (Figure 4's escape channel).
        let mut g = WaitGraph::new(10);
        g.add_chain(1, &[1, 2]);
        g.add_chain(2, &[3, 4, 5]);
        g.add_chain(3, &[6, 7, 0]);
        g.add_requests(1, &[3]);
        g.add_requests(2, &[6]);
        g.add_requests(3, &[1, 9]); // 9 is free: an escape
        let a = g.analyze(1000);
        assert!(!a.has_deadlock());
    }

    #[test]
    fn waiting_on_moving_message_is_not_deadlock() {
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0, 1]); // moving: no requests
        g.add_chain(2, &[2, 3]);
        g.add_requests(2, &[0]); // waits on m1's tail VC
        let a = g.analyze(1000);
        assert!(!a.has_deadlock());
        assert_eq!(a.num_blocked, 1);
    }

    #[test]
    fn dependent_message_classified() {
        // Figure 2's m5: blocked behind the knot without owning knot
        // vertices, every request leading into the deadlock => committed.
        let mut g = WaitGraph::new(12);
        g.add_chain(1, &[1, 2]);
        g.add_chain(2, &[3, 4, 5]);
        g.add_chain(3, &[6, 7, 0]);
        g.add_requests(1, &[3]);
        g.add_requests(2, &[6]);
        g.add_requests(3, &[1]);
        g.add_chain(6, &[10, 11]);
        g.add_requests(6, &[4]);
        let a = g.analyze(1000);
        assert_eq!(a.deadlocks.len(), 1);
        assert_eq!(a.deadlocks[0].deadlock_set, vec![1, 2, 3]);
        assert_eq!(a.dependent, vec![(6, DependentKind::Committed)]);
    }

    #[test]
    fn transient_dependent_message() {
        let mut g = WaitGraph::new(14);
        g.add_chain(1, &[1, 2]);
        g.add_chain(2, &[3, 4, 5]);
        g.add_chain(3, &[6, 7, 0]);
        g.add_requests(1, &[3]);
        g.add_requests(2, &[6]);
        g.add_requests(3, &[1]);
        // m6 waits on knot vertex 4 AND free vertex 13 -> transient.
        g.add_chain(6, &[10, 11]);
        g.add_requests(6, &[4, 13]);
        let a = g.analyze(1000);
        assert_eq!(a.dependent, vec![(6, DependentKind::Transient)]);
    }

    #[test]
    fn multi_cycle_deadlock_detected() {
        // Figure 3 shape: 4 blocked messages, 2 VCs per channel; each waits
        // for both VCs of the next channel around a square, all owned.
        // Vertices: channel i has VCs 2i (tail-owned by m_i) and 2i+1... use
        // a direct construction: m_i owns {a_i, b_i}; waits for {a_{i+1}, b_{i+1}}.
        // To be a knot every vertex must be reachable: chain a->b then b
        // requests next a and b.
        let mut g = WaitGraph::new(8);
        for i in 0..4u64 {
            let a = (2 * i) as u32;
            let b = a + 1;
            g.add_chain(i + 1, &[a, b]);
        }
        for i in 0..4u64 {
            let na = (2 * ((i + 1) % 4)) as u32;
            g.add_requests(i + 1, &[na, na + 1]);
        }
        let a = g.analyze(1000);
        assert_eq!(a.deadlocks.len(), 1);
        let d = &a.deadlocks[0];
        assert_eq!(d.deadlock_set.len(), 4);
        assert_eq!(d.resource_set.len(), 8);
        assert!(d.cycle_density.value() > 1);
        assert_eq!(d.kind(), DeadlockKind::MultiCycle);
    }

    #[test]
    fn two_independent_knots() {
        let mut g = WaitGraph::new(8);
        // knot A: m1<->m2
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[2, 3]);
        g.add_requests(1, &[2]);
        g.add_requests(2, &[0]);
        // knot B: m3<->m4
        g.add_chain(3, &[4, 5]);
        g.add_chain(4, &[6, 7]);
        g.add_requests(3, &[6]);
        g.add_requests(4, &[4]);
        let a = g.analyze(1000);
        assert_eq!(a.deadlocks.len(), 2);
        let sets: Vec<_> = a.deadlocks.iter().map(|d| d.deadlock_set.clone()).collect();
        assert!(sets.contains(&vec![1, 2]));
        assert!(sets.contains(&vec![3, 4]));
    }

    #[test]
    fn empty_graph_is_clean() {
        let g = WaitGraph::new(16);
        let a = g.analyze(10);
        assert!(!a.has_deadlock());
        assert_eq!(a.num_blocked, 0);
        assert!(a.dependent.is_empty());
    }

    #[test]
    fn minimal_uni_torus_two_message_deadlock() {
        // The paper notes a uni-torus needs only 2 messages for deadlock.
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[2, 3]);
        g.add_requests(1, &[2]);
        g.add_requests(2, &[0]);
        let a = g.analyze(10);
        assert_eq!(a.deadlocks.len(), 1);
        assert_eq!(a.deadlocks[0].deadlock_set, vec![1, 2]);
    }

    #[test]
    fn scratch_reuse_across_epochs_matches_fresh() {
        let mut scratch = DetectorScratch::new();
        // Epoch 1: deadlocked graph.
        let g1 = figure1_like();
        let a1 = g1.analyze_with(1000, &mut scratch);
        let f1 = g1.analyze(1000);
        assert_eq!(a1.deadlocks.len(), f1.deadlocks.len());
        assert_eq!(a1.deadlocks[0].deadlock_set, f1.deadlocks[0].deadlock_set);
        assert_eq!(a1.deadlocks[0].knot, f1.deadlocks[0].knot);
        // Epoch 2 reuses the same scratch on a clean, differently-sized graph.
        let mut g2 = WaitGraph::new(4);
        g2.add_chain(1, &[0, 1]);
        let a2 = g2.analyze_with(1000, &mut scratch);
        assert!(!a2.has_deadlock());
        assert!(a2.dependent.is_empty());
    }

    #[test]
    fn in_place_victim_removal_matches_rebuild() {
        // Drop one victim's requests in place; the slim re-analysis must
        // agree with a full fresh analysis of the mutated graph.
        let mut scratch = DetectorScratch::new();
        let mut g = figure1_like();
        let a = g.analyze_with(1000, &mut scratch);
        let victim = a.deadlocks[0].deadlock_set[0];
        assert!(g.remove_requests(victim));
        let sets = g.knot_deadlock_sets(&mut scratch);
        assert!(sets.is_empty(), "one victim breaks the single knot");
        assert!(!g.analyze(1000).has_deadlock());
    }

    #[test]
    fn knot_deadlock_sets_reports_residual_knots() {
        let mut scratch = DetectorScratch::new();
        // Two independent knots; removing a victim from one leaves the other.
        let mut g = WaitGraph::new(8);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[2, 3]);
        g.add_requests(1, &[2]);
        g.add_requests(2, &[0]);
        g.add_chain(3, &[4, 5]);
        g.add_chain(4, &[6, 7]);
        g.add_requests(3, &[6]);
        g.add_requests(4, &[4]);
        g.remove_requests(1);
        let sets = g.knot_deadlock_sets(&mut scratch);
        assert_eq!(sets, vec![vec![3, 4]]);
    }
}
