//! JSON serialization of wait graphs and analyses.
//!
//! Incident records store a CWG snapshot as data — who owns what, who
//! waits for what — rather than as adjacency lists: the graph structure is
//! derivable (and re-derived on load through the same [`WaitGraph`]
//! constructors the detector uses), so a parsed incident can never encode
//! a graph the detector could not have built.

use crate::analysis::{Analysis, Deadlock, DependentKind};
use crate::cycles::CycleCount;
use crate::graph::WaitGraph;
use crate::jsonio::{obj, parse, u64_arr, Json, ParseError};

fn bad(message: &str) -> ParseError {
    ParseError {
        offset: 0,
        message: message.to_string(),
    }
}

fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ParseError> {
    v.get(key).ok_or_else(|| bad(&format!("missing `{key}`")))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, ParseError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| bad(&format!("`{key}` must be an unsigned integer")))
}

fn get_u32_arr(v: &Json, key: &str) -> Result<Vec<u32>, ParseError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| bad(&format!("`{key}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(&format!("`{key}` holds a non-u32 element")))
        })
        .collect()
}

fn get_u64_arr(v: &Json, key: &str) -> Result<Vec<u64>, ParseError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| bad(&format!("`{key}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| bad(&format!("`{key}` holds a non-u64 element")))
        })
        .collect()
}

impl WaitGraph {
    /// Serializes the graph as a JSON value: vertex count plus each
    /// registered message's ownership chain and request set.
    pub fn to_json(&self) -> Json {
        let messages: Vec<Json> = self
            .messages()
            .map(|m| {
                obj(vec![
                    ("id", Json::U64(m)),
                    (
                        "chain",
                        u64_arr(self.chain(m).unwrap_or(&[]).iter().map(|&v| v as u64)),
                    ),
                    (
                        "requests",
                        u64_arr(self.requests_of(m).unwrap_or(&[]).iter().map(|&v| v as u64)),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("num_vertices", Json::U64(self.num_vertices() as u64)),
            ("messages", Json::Arr(messages)),
        ])
    }

    /// Rebuilds a graph from [`to_json`](Self::to_json) output.
    ///
    /// The graph is reconstructed through [`add_chain`](Self::add_chain) /
    /// [`add_requests`](Self::add_requests), so structural invariants
    /// (unique ownership, chains before requests) are re-validated; any
    /// violation surfaces as a parse error rather than a panic.
    pub fn from_json(v: &Json) -> Result<WaitGraph, ParseError> {
        let n = get_u64(v, "num_vertices")? as usize;
        let mut g = WaitGraph::new(n);
        let messages = get(v, "messages")?
            .as_arr()
            .ok_or_else(|| bad("`messages` must be an array"))?;
        for m in messages {
            let id = get_u64(m, "id")?;
            let chain = get_u32_arr(m, "chain")?;
            let requests = get_u32_arr(m, "requests")?;
            if chain.is_empty() {
                return Err(bad("message chain may not be empty"));
            }
            if chain.iter().chain(&requests).any(|&x| x as usize >= n) {
                return Err(bad("vertex index out of range"));
            }
            if chain.iter().any(|&x| g.owner(x).is_some()) {
                return Err(bad("vertex owned twice"));
            }
            if g.chain(id).is_some() {
                return Err(bad("message registered twice"));
            }
            g.add_chain(id, &chain);
            if !requests.is_empty() {
                g.add_requests(id, &requests);
            }
        }
        Ok(g)
    }

    /// Parses a graph from JSON text.
    pub fn from_json_str(text: &str) -> Result<WaitGraph, ParseError> {
        Self::from_json(&parse(text)?)
    }
}

fn cycle_count_to_json(c: CycleCount) -> Json {
    obj(vec![
        ("value", Json::U64(c.value())),
        ("capped", Json::Bool(c.is_capped())),
    ])
}

fn cycle_count_from_json(v: &Json) -> Result<CycleCount, ParseError> {
    let value = get_u64(v, "value")?;
    let capped = get(v, "capped")?
        .as_bool()
        .ok_or_else(|| bad("`capped` must be a bool"))?;
    Ok(if capped {
        CycleCount::AtLeast(value)
    } else {
        CycleCount::Exact(value)
    })
}

impl Analysis {
    /// Serializes the analysis: every knot's descriptors plus the
    /// dependent-message census.
    pub fn to_json(&self) -> Json {
        let deadlocks: Vec<Json> = self
            .deadlocks
            .iter()
            .map(|d| {
                obj(vec![
                    ("knot", u64_arr(d.knot.iter().map(|&v| v as u64))),
                    ("deadlock_set", u64_arr(d.deadlock_set.iter().copied())),
                    (
                        "resource_set",
                        u64_arr(d.resource_set.iter().map(|&v| v as u64)),
                    ),
                    ("cycle_density", cycle_count_to_json(d.cycle_density)),
                ])
            })
            .collect();
        let dependent: Vec<Json> = self
            .dependent
            .iter()
            .map(|&(m, kind)| {
                obj(vec![
                    ("id", Json::U64(m)),
                    (
                        "kind",
                        Json::Str(
                            match kind {
                                DependentKind::Committed => "committed",
                                DependentKind::Transient => "transient",
                            }
                            .to_string(),
                        ),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("num_blocked", Json::U64(self.num_blocked as u64)),
            ("deadlocks", Json::Arr(deadlocks)),
            ("dependent", Json::Arr(dependent)),
        ])
    }

    /// Rebuilds an analysis from [`to_json`](Self::to_json) output.
    pub fn from_json(v: &Json) -> Result<Analysis, ParseError> {
        let num_blocked = get_u64(v, "num_blocked")? as usize;
        let mut deadlocks = Vec::new();
        for d in get(v, "deadlocks")?
            .as_arr()
            .ok_or_else(|| bad("`deadlocks` must be an array"))?
        {
            deadlocks.push(Deadlock {
                knot: get_u32_arr(d, "knot")?,
                deadlock_set: get_u64_arr(d, "deadlock_set")?,
                resource_set: get_u32_arr(d, "resource_set")?,
                cycle_density: cycle_count_from_json(get(d, "cycle_density")?)?,
            });
        }
        let mut dependent = Vec::new();
        for e in get(v, "dependent")?
            .as_arr()
            .ok_or_else(|| bad("`dependent` must be an array"))?
        {
            let id = get_u64(e, "id")?;
            let kind = match get(e, "kind")?.as_str() {
                Some("committed") => DependentKind::Committed,
                Some("transient") => DependentKind::Transient,
                _ => return Err(bad("dependent `kind` must be committed|transient")),
            };
            dependent.push((id, kind));
        }
        Ok(Analysis {
            deadlocks,
            dependent,
            num_blocked,
        })
    }
}

/// Structural equality of two analyses (the derived [`Deadlock`] carries no
/// `PartialEq`; incident round-trip tests compare through this).
pub fn analyses_equal(a: &Analysis, b: &Analysis) -> bool {
    a.num_blocked == b.num_blocked
        && a.dependent == b.dependent
        && a.deadlocks.len() == b.deadlocks.len()
        && a.deadlocks.iter().zip(&b.deadlocks).all(|(x, y)| {
            x.knot == y.knot
                && x.deadlock_set == y.deadlock_set
                && x.resource_set == y.resource_set
                && x.cycle_density == y.cycle_density
        })
}

/// Structural equality of two wait graphs: same vertex count, same
/// messages, same chains and requests (and therefore the same arcs).
pub fn graphs_equal(a: &WaitGraph, b: &WaitGraph) -> bool {
    if a.num_vertices() != b.num_vertices() {
        return false;
    }
    let mut ma: Vec<u64> = a.messages().collect();
    let mut mb: Vec<u64> = b.messages().collect();
    ma.sort_unstable();
    mb.sort_unstable();
    ma == mb
        && ma
            .iter()
            .all(|&m| a.chain(m) == b.chain(m) && a.requests_of(m) == b.requests_of(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_like() -> WaitGraph {
        let mut g = WaitGraph::new(10);
        g.add_chain(1, &[1, 2]);
        g.add_chain(2, &[3, 4, 5]);
        g.add_chain(3, &[6, 7, 0]);
        g.add_chain(4, &[8]);
        g.add_requests(1, &[3]);
        g.add_requests(2, &[6]);
        g.add_requests(3, &[1]);
        g
    }

    #[test]
    fn graph_round_trips() {
        let g = figure1_like();
        let text = g.to_json().to_string();
        let back = WaitGraph::from_json_str(&text).unwrap();
        assert!(graphs_equal(&g, &back));
        // And the rebuilt graph analyzes identically.
        assert!(analyses_equal(&g.analyze(1000), &back.analyze(1000)));
    }

    #[test]
    fn analysis_round_trips() {
        let a = figure1_like().analyze(1000);
        assert!(a.has_deadlock());
        let text = a.to_json().to_string();
        let back = Analysis::from_json(&parse(&text).unwrap()).unwrap();
        assert!(analyses_equal(&a, &back));
    }

    #[test]
    fn capped_density_round_trips() {
        let mut a = figure1_like().analyze(1000);
        a.deadlocks[0].cycle_density = CycleCount::AtLeast(42);
        let back = Analysis::from_json(&a.to_json()).unwrap();
        assert!(back.deadlocks[0].cycle_density.is_capped());
        assert_eq!(back.deadlocks[0].cycle_density.value(), 42);
    }

    #[test]
    fn dependents_round_trip() {
        let mut g = figure1_like();
        g.add_chain(6, &[9]);
        g.add_requests(6, &[4]);
        let a = g.analyze(1000);
        assert!(!a.dependent.is_empty());
        let back = Analysis::from_json(&a.to_json()).unwrap();
        assert_eq!(back.dependent, a.dependent);
    }

    #[test]
    fn corrupt_graphs_are_rejected_not_panicked() {
        for text in [
            "{}",
            "{\"num_vertices\": 4, \"messages\": 3}",
            // vertex out of range
            "{\"num_vertices\":2,\"messages\":[{\"id\":1,\"chain\":[5],\"requests\":[]}]}",
            // empty chain
            "{\"num_vertices\":2,\"messages\":[{\"id\":1,\"chain\":[],\"requests\":[]}]}",
            // double ownership
            "{\"num_vertices\":3,\"messages\":[{\"id\":1,\"chain\":[0],\"requests\":[]},{\"id\":2,\"chain\":[0],\"requests\":[]}]}",
            // duplicate message id
            "{\"num_vertices\":3,\"messages\":[{\"id\":1,\"chain\":[0],\"requests\":[]},{\"id\":1,\"chain\":[1],\"requests\":[]}]}",
        ] {
            assert!(WaitGraph::from_json_str(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = WaitGraph::new(0);
        let back = WaitGraph::from_json_str(&g.to_json().to_string()).unwrap();
        assert!(graphs_equal(&g, &back));
    }
}
