//! Channel wait-for graphs (CWGs) and **true deadlock detection**.
//!
//! The paper's methodological contribution is measuring *actual* deadlocks,
//! not approximations: a deadlock exists iff the channel wait-for graph
//! contains a **knot** — a set of vertices each of which reaches exactly
//! that set \[6, 9\]. This crate implements:
//!
//! * [`WaitGraph`] — the CWG itself. Vertices are virtual channels; a solid
//!   arc `u → v` labelled with message `m` records that `m` acquired `v`
//!   after `u` and still owns both; dashed arcs fan out from a blocked
//!   message's head VC to every VC its routing relation currently supplies.
//! * [`scc`] — iterative Tarjan strongly-connected components.
//! * Knot detection: a knot is precisely a **non-trivial terminal SCC**
//!   (no arcs leave the component), because then the reachable set of every
//!   member is the component itself.
//! * [`count_cycles`] — capped elementary-cycle counting (Johnson's
//!   algorithm, run per SCC), used for the paper's *cyclic non-deadlock*
//!   and *knot cycle density* measurements.
//! * [`Analysis`] — per-knot deadlock descriptors: deadlock set, resource
//!   set, knot cycle density, single- vs multi-cycle classification, plus
//!   the *dependent message* census of §2.2.1.
//!
//! The crate is deliberately independent of the simulator: vertices are
//! plain `u32` ids and messages plain `u64`s, so the detector can be tested
//! against the paper's Figures 1–4 verbatim (see `tests/figures_1_to_4.rs`
//! at the workspace root) and fuzzed with random graphs.
//!
//! # Example: the paper's Figure 1 deadlock
//!
//! ```
//! use icn_cwg::{WaitGraph, DeadlockKind};
//!
//! let mut g = WaitGraph::new(8);
//! g.add_chain(1, &[1, 2]);      // m1 owns c1, c2 ...
//! g.add_chain(2, &[3, 4, 5]);
//! g.add_chain(3, &[6, 7, 0]);
//! g.add_requests(1, &[3]);      // ... and waits for c3 (owned by m2)
//! g.add_requests(2, &[6]);
//! g.add_requests(3, &[1]);
//!
//! let analysis = g.analyze(1_000);
//! let d = &analysis.deadlocks[0];
//! assert_eq!(d.deadlock_set, vec![1, 2, 3]);
//! assert_eq!(d.resource_set.len(), 8);
//! assert_eq!(d.kind(), DeadlockKind::SingleCycle);
//! ```

mod adjacency;
mod analysis;
mod cycles;
mod dot;
mod dynamic;
mod graph;
pub mod jsonio;
mod scc;
mod serialize;

pub use adjacency::{Adjacency, Csr};
pub use analysis::{Analysis, Deadlock, DeadlockKind, DependentKind, DetectorScratch};
pub use cycles::{count_cycles, CycleCount};
pub use dynamic::DynamicWaitGraph;
pub use graph::{Edge, MessageId, VertexId, WaitGraph};
pub use scc::{scc, SccResult, SccScratch};
pub use serialize::{analyses_equal, graphs_equal};
