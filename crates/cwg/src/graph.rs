//! The channel wait-for graph structure.

use std::collections::HashMap;

/// A virtual-channel vertex in the CWG. The embedding (which VC of which
/// physical channel this is) belongs to the caller.
pub type VertexId = u32;

/// Opaque message identifier.
pub type MessageId = u64;

/// One arc of the CWG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Target vertex.
    pub to: VertexId,
    /// The message this arc belongs to: for solid arcs, the owner of both
    /// endpoints; for dashed arcs, the blocked message doing the waiting.
    pub msg: MessageId,
    /// Dashed arcs are resource *requests*; solid arcs record acquisition
    /// order among owned VCs.
    pub dashed: bool,
}

/// A snapshot of resource allocations and requests at one instant.
///
/// Built from simulator state at each detection epoch (the paper invokes
/// detection every 50 cycles). Unlike the dependency graphs of avoidance
/// theory, this depicts the *dynamic* state — it is generally disconnected.
#[derive(Clone, Debug, Default)]
pub struct WaitGraph {
    adj: Vec<Vec<Edge>>,
    owner: Vec<Option<MessageId>>,
    /// All vertices owned by each message, in acquisition order.
    owned: HashMap<MessageId, Vec<VertexId>>,
    /// Request targets of each blocked message.
    requests: HashMap<MessageId, Vec<VertexId>>,
    num_dashed: usize,
}

impl WaitGraph {
    /// An empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        WaitGraph {
            adj: vec![Vec::new(); n],
            owner: vec![None; n],
            owned: HashMap::new(),
            requests: HashMap::new(),
            num_dashed: 0,
        }
    }

    /// Number of vertices (owned or not).
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Records that `msg` owns `chain` (in acquisition order: tail-most
    /// first). Adds the solid arcs `chain[i] → chain[i+1]`.
    ///
    /// # Panics
    /// Panics if the chain is empty, a vertex is out of range or already
    /// owned, or the message already registered a chain.
    pub fn add_chain(&mut self, msg: MessageId, chain: &[VertexId]) {
        assert!(!chain.is_empty(), "ownership chain may not be empty");
        for &v in chain {
            assert!((v as usize) < self.adj.len(), "vertex {v} out of range");
            assert!(
                self.owner[v as usize].is_none(),
                "vertex {v} already owned"
            );
            self.owner[v as usize] = Some(msg);
        }
        for w in chain.windows(2) {
            self.adj[w[0] as usize].push(Edge {
                to: w[1],
                msg,
                dashed: false,
            });
        }
        let prev = self.owned.insert(msg, chain.to_vec());
        assert!(prev.is_none(), "message {msg} registered twice");
    }

    /// Records that blocked message `msg` (whose chain must already be
    /// registered) is waiting for each vertex of `targets`. Dashed arcs are
    /// added from the head (last) vertex of its chain.
    ///
    /// # Panics
    /// Panics if `msg` has no chain, `targets` is empty, or a target is out
    /// of range.
    pub fn add_requests(&mut self, msg: MessageId, targets: &[VertexId]) {
        assert!(!targets.is_empty(), "a blocked message waits for something");
        let head = *self
            .owned
            .get(&msg)
            .expect("requests require an ownership chain")
            .last()
            .unwrap();
        for &t in targets {
            assert!((t as usize) < self.adj.len(), "vertex {t} out of range");
            self.adj[head as usize].push(Edge {
                to: t,
                msg,
                dashed: true,
            });
        }
        self.num_dashed += targets.len();
        let prev = self.requests.insert(msg, targets.to_vec());
        assert!(prev.is_none(), "message {msg} requested twice");
    }

    /// Outgoing arcs of a vertex.
    #[inline]
    pub fn edges(&self, v: VertexId) -> &[Edge] {
        &self.adj[v as usize]
    }

    /// The message owning `v`, if any.
    #[inline]
    pub fn owner(&self, v: VertexId) -> Option<MessageId> {
        self.owner[v as usize]
    }

    /// The chain owned by `msg` (acquisition order), if registered.
    pub fn chain(&self, msg: MessageId) -> Option<&[VertexId]> {
        self.owned.get(&msg).map(|v| v.as_slice())
    }

    /// Request targets of `msg`, if it is blocked.
    pub fn requests_of(&self, msg: MessageId) -> Option<&[VertexId]> {
        self.requests.get(&msg).map(|v| v.as_slice())
    }

    /// Messages with registered requests (the blocked messages).
    pub fn blocked_messages(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.requests.keys().copied()
    }

    /// Number of blocked messages in the snapshot.
    pub fn num_blocked(&self) -> usize {
        self.requests.len()
    }

    /// All registered messages (owners of at least one vertex).
    pub fn messages(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.owned.keys().copied()
    }

    /// Total dashed (request) arcs — the CWG "fan-out" mass.
    pub fn num_requests(&self) -> usize {
        self.num_dashed
    }

    /// Counts the elementary resource-dependency cycles in the snapshot
    /// (capped at `cap`). The paper uses this as the congestion precursor
    /// metric when no deadlock exists — cyclic non-deadlocks (§2.2.3).
    pub fn count_cycles(&self, cap: u64) -> crate::CycleCount {
        crate::count_cycles(&self.adjacency(), cap)
    }

    /// Plain adjacency (targets only), for the SCC / cycle algorithms.
    pub(crate) fn adjacency(&self) -> Vec<Vec<VertexId>> {
        self.adj
            .iter()
            .map(|es| es.iter().map(|e| e.to).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_adds_solid_edges() {
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0, 1, 2]);
        assert_eq!(g.edges(0), &[Edge { to: 1, msg: 1, dashed: false }]);
        assert_eq!(g.edges(1), &[Edge { to: 2, msg: 1, dashed: false }]);
        assert!(g.edges(2).is_empty());
        assert_eq!(g.owner(0), Some(1));
        assert_eq!(g.owner(3), None);
        assert_eq!(g.chain(1), Some(&[0, 1, 2][..]));
    }

    #[test]
    fn requests_fan_out_from_head() {
        let mut g = WaitGraph::new(5);
        g.add_chain(7, &[0, 1]);
        g.add_requests(7, &[3, 4]);
        let dashed: Vec<_> = g.edges(1).iter().filter(|e| e.dashed).collect();
        assert_eq!(dashed.len(), 2);
        assert_eq!(g.num_requests(), 2);
        assert_eq!(g.num_blocked(), 1);
        assert_eq!(g.requests_of(7), Some(&[3, 4][..]));
    }

    #[test]
    fn single_vertex_chain_allowed() {
        let mut g = WaitGraph::new(2);
        g.add_chain(9, &[1]);
        g.add_requests(9, &[0]);
        assert_eq!(g.edges(1), &[Edge { to: 0, msg: 9, dashed: true }]);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_ownership_rejected() {
        let mut g = WaitGraph::new(3);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_chain_rejected() {
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0]);
        g.add_chain(1, &[1]);
    }

    #[test]
    #[should_panic(expected = "require an ownership chain")]
    fn requests_without_chain_rejected() {
        let mut g = WaitGraph::new(3);
        g.add_requests(1, &[0]);
    }
}
