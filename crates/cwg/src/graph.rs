//! The channel wait-for graph structure.

use crate::adjacency::Csr;
use std::collections::HashMap;

/// A virtual-channel vertex in the CWG. The embedding (which VC of which
/// physical channel this is) belongs to the caller.
pub type VertexId = u32;

/// Opaque message identifier.
pub type MessageId = u64;

/// One arc of the CWG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Target vertex.
    pub to: VertexId,
    /// The message this arc belongs to: for solid arcs, the owner of both
    /// endpoints; for dashed arcs, the blocked message doing the waiting.
    pub msg: MessageId,
    /// Dashed arcs are resource *requests*; solid arcs record acquisition
    /// order among owned VCs.
    pub dashed: bool,
}

/// Sentinel slot for "no owning message".
const NO_MSG: u32 = u32::MAX;

/// Per-message flat record: ranges into the chain / request pools.
#[derive(Clone, Copy, Debug)]
struct MsgEntry {
    id: MessageId,
    chain_start: u32,
    chain_len: u32,
    req_start: u32,
    req_len: u32,
}

/// A snapshot of resource allocations and requests at one instant.
///
/// Built from simulator state at each detection epoch (the paper invokes
/// detection every 50 cycles). Unlike the dependency graphs of avoidance
/// theory, this depicts the *dynamic* state — it is generally disconnected.
///
/// The graph is **rebuildable in place**: [`reset`](WaitGraph::reset)
/// clears it while keeping every buffer's capacity, so the per-epoch
/// rebuild performs no heap allocation once capacities have warmed up.
/// Message state lives in slot-indexed flat storage (a record table plus
/// shared chain/request vertex pools) rather than per-message `Vec`s.
#[derive(Clone, Debug, Default)]
pub struct WaitGraph {
    adj: Vec<Vec<Edge>>,
    /// Vertex -> owning message slot (index into `msgs`), or [`NO_MSG`].
    owner_slot: Vec<u32>,
    msgs: Vec<MsgEntry>,
    /// Message id -> slot; reused across rebuilds (capacity survives
    /// [`reset`](WaitGraph::reset)).
    index: HashMap<MessageId, u32>,
    chain_pool: Vec<VertexId>,
    req_pool: Vec<VertexId>,
    num_dashed: usize,
}

impl WaitGraph {
    /// An empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut g = WaitGraph::default();
        g.reset(n);
        g
    }

    /// Clears the graph back to `n` unowned, edgeless vertices, retaining
    /// every buffer's capacity. Only vertices touched by the previous
    /// build are visited, so a reset after a sparse epoch is cheap.
    pub fn reset(&mut self, n: usize) {
        // Clear per-vertex state at previously owned vertices (edges only
        // ever originate at owned vertices).
        for &v in &self.chain_pool {
            self.adj[v as usize].clear();
            self.owner_slot[v as usize] = NO_MSG;
        }
        if self.adj.len() != n {
            self.adj.resize_with(n, Vec::new);
            self.owner_slot.resize(n, NO_MSG);
        }
        self.msgs.clear();
        self.index.clear();
        self.chain_pool.clear();
        self.req_pool.clear();
        self.num_dashed = 0;
    }

    /// Number of vertices (owned or not).
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Records that `msg` owns `chain` (in acquisition order: tail-most
    /// first). Adds the solid arcs `chain[i] → chain[i+1]`.
    ///
    /// # Panics
    /// Panics if the chain is empty, a vertex is out of range or already
    /// owned, or the message already registered a chain.
    pub fn add_chain(&mut self, msg: MessageId, chain: &[VertexId]) {
        assert!(!chain.is_empty(), "ownership chain may not be empty");
        let slot = self.msgs.len() as u32;
        for &v in chain {
            assert!((v as usize) < self.adj.len(), "vertex {v} out of range");
            assert!(
                self.owner_slot[v as usize] == NO_MSG,
                "vertex {v} already owned"
            );
            self.owner_slot[v as usize] = slot;
        }
        for w in chain.windows(2) {
            self.adj[w[0] as usize].push(Edge {
                to: w[1],
                msg,
                dashed: false,
            });
        }
        let chain_start = self.chain_pool.len() as u32;
        self.chain_pool.extend_from_slice(chain);
        let prev = self.index.insert(msg, slot);
        assert!(prev.is_none(), "message {msg} registered twice");
        self.msgs.push(MsgEntry {
            id: msg,
            chain_start,
            chain_len: chain.len() as u32,
            req_start: 0,
            req_len: 0,
        });
    }

    /// Records that blocked message `msg` (whose chain must already be
    /// registered) is waiting for each vertex of `targets`. Dashed arcs are
    /// added from the head (last) vertex of its chain.
    ///
    /// # Panics
    /// Panics if `msg` has no chain, `targets` is empty, or a target is out
    /// of range.
    pub fn add_requests(&mut self, msg: MessageId, targets: &[VertexId]) {
        assert!(!targets.is_empty(), "a blocked message waits for something");
        let &slot = self
            .index
            .get(&msg)
            .expect("requests require an ownership chain");
        let entry = self.msgs[slot as usize];
        assert!(entry.req_len == 0, "message {msg} requested twice");
        let head = self.chain_pool[(entry.chain_start + entry.chain_len - 1) as usize];
        for &t in targets {
            assert!((t as usize) < self.adj.len(), "vertex {t} out of range");
            self.adj[head as usize].push(Edge {
                to: t,
                msg,
                dashed: true,
            });
        }
        self.num_dashed += targets.len();
        let e = &mut self.msgs[slot as usize];
        e.req_start = self.req_pool.len() as u32;
        e.req_len = targets.len() as u32;
        self.req_pool.extend_from_slice(targets);
    }

    /// Removes the dashed request arcs of `msg` in place, turning its chain
    /// into a CWG sink — exactly how an in-progress recovery victim stops
    /// waiting while still owning its chain. Returns `false` when `msg` is
    /// unknown or had no requests.
    ///
    /// The resulting graph is edge-for-edge identical to one freshly built
    /// from the same snapshot with `msg`'s requests omitted, which is what
    /// makes the recovery loop's incremental re-analysis exact.
    pub fn remove_requests(&mut self, msg: MessageId) -> bool {
        let Some(&slot) = self.index.get(&msg) else {
            return false;
        };
        let entry = self.msgs[slot as usize];
        if entry.req_len == 0 {
            return false;
        }
        let head = self.chain_pool[(entry.chain_start + entry.chain_len - 1) as usize];
        self.adj[head as usize].retain(|e| !(e.dashed && e.msg == msg));
        self.num_dashed -= entry.req_len as usize;
        self.msgs[slot as usize].req_len = 0;
        true
    }

    /// Outgoing arcs of a vertex.
    #[inline]
    pub fn edges(&self, v: VertexId) -> &[Edge] {
        &self.adj[v as usize]
    }

    /// The message owning `v`, if any.
    #[inline]
    pub fn owner(&self, v: VertexId) -> Option<MessageId> {
        match self.owner_slot[v as usize] {
            NO_MSG => None,
            slot => Some(self.msgs[slot as usize].id),
        }
    }

    /// The chain owned by `msg` (acquisition order), if registered.
    pub fn chain(&self, msg: MessageId) -> Option<&[VertexId]> {
        let &slot = self.index.get(&msg)?;
        let e = self.msgs[slot as usize];
        Some(&self.chain_pool[e.chain_start as usize..(e.chain_start + e.chain_len) as usize])
    }

    /// Request targets of `msg`, if it is blocked.
    pub fn requests_of(&self, msg: MessageId) -> Option<&[VertexId]> {
        let &slot = self.index.get(&msg)?;
        let e = self.msgs[slot as usize];
        if e.req_len == 0 {
            return None;
        }
        Some(&self.req_pool[e.req_start as usize..(e.req_start + e.req_len) as usize])
    }

    /// Messages with registered requests (the blocked messages).
    pub fn blocked_messages(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.msgs.iter().filter(|e| e.req_len > 0).map(|e| e.id)
    }

    /// Number of blocked messages in the snapshot.
    pub fn num_blocked(&self) -> usize {
        self.msgs.iter().filter(|e| e.req_len > 0).count()
    }

    /// All registered messages (owners of at least one vertex).
    pub fn messages(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.msgs.iter().map(|e| e.id)
    }

    /// Total dashed (request) arcs — the CWG "fan-out" mass.
    pub fn num_requests(&self) -> usize {
        self.num_dashed
    }

    /// Counts the elementary resource-dependency cycles in the snapshot
    /// (capped at `cap`). The paper uses this as the congestion precursor
    /// metric when no deadlock exists — cyclic non-deadlocks (§2.2.3).
    pub fn count_cycles(&self, cap: u64) -> crate::CycleCount {
        let mut csr = Csr::new();
        self.build_csr(&mut csr);
        crate::count_cycles(&csr, cap)
    }

    /// Refills `csr` with the targets-only adjacency, shared by the SCC,
    /// knot, and cycle algorithms (no allocation once warmed up).
    pub fn build_csr(&self, csr: &mut Csr) {
        csr.reset(self.adj.len());
        for es in &self.adj {
            csr.push_vertex(es.iter().map(|e| e.to));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_adds_solid_edges() {
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0, 1, 2]);
        assert_eq!(
            g.edges(0),
            &[Edge {
                to: 1,
                msg: 1,
                dashed: false
            }]
        );
        assert_eq!(
            g.edges(1),
            &[Edge {
                to: 2,
                msg: 1,
                dashed: false
            }]
        );
        assert!(g.edges(2).is_empty());
        assert_eq!(g.owner(0), Some(1));
        assert_eq!(g.owner(3), None);
        assert_eq!(g.chain(1), Some(&[0, 1, 2][..]));
    }

    #[test]
    fn requests_fan_out_from_head() {
        let mut g = WaitGraph::new(5);
        g.add_chain(7, &[0, 1]);
        g.add_requests(7, &[3, 4]);
        let dashed: Vec<_> = g.edges(1).iter().filter(|e| e.dashed).collect();
        assert_eq!(dashed.len(), 2);
        assert_eq!(g.num_requests(), 2);
        assert_eq!(g.num_blocked(), 1);
        assert_eq!(g.requests_of(7), Some(&[3, 4][..]));
    }

    #[test]
    fn single_vertex_chain_allowed() {
        let mut g = WaitGraph::new(2);
        g.add_chain(9, &[1]);
        g.add_requests(9, &[0]);
        assert_eq!(
            g.edges(1),
            &[Edge {
                to: 0,
                msg: 9,
                dashed: true
            }]
        );
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_ownership_rejected() {
        let mut g = WaitGraph::new(3);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_chain_rejected() {
        let mut g = WaitGraph::new(4);
        g.add_chain(1, &[0]);
        g.add_chain(1, &[1]);
    }

    #[test]
    #[should_panic(expected = "require an ownership chain")]
    fn requests_without_chain_rejected() {
        let mut g = WaitGraph::new(3);
        g.add_requests(1, &[0]);
    }

    #[test]
    #[should_panic(expected = "requested twice")]
    fn double_requests_rejected() {
        let mut g = WaitGraph::new(3);
        g.add_chain(1, &[0]);
        g.add_requests(1, &[1]);
        g.add_requests(1, &[2]);
    }

    #[test]
    fn reset_clears_and_reuses() {
        let mut g = WaitGraph::new(6);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[3]);
        g.add_requests(1, &[3]);
        g.reset(6);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_blocked(), 0);
        assert_eq!(g.num_requests(), 0);
        for v in 0..6 {
            assert_eq!(g.owner(v), None, "vertex {v} still owned after reset");
            assert!(g.edges(v).is_empty());
        }
        assert_eq!(g.chain(1), None);
        // The same ids and vertices can be registered again.
        g.add_chain(1, &[1, 2]);
        g.add_requests(1, &[0]);
        assert_eq!(g.chain(1), Some(&[1, 2][..]));
        assert_eq!(g.requests_of(1), Some(&[0][..]));
    }

    #[test]
    fn reset_can_resize() {
        let mut g = WaitGraph::new(2);
        g.add_chain(5, &[1]);
        g.reset(8);
        assert_eq!(g.num_vertices(), 8);
        g.add_chain(5, &[7]);
        assert_eq!(g.owner(7), Some(5));
        g.reset(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.owner(1), None);
    }

    #[test]
    fn remove_requests_matches_fresh_build() {
        let mut g = WaitGraph::new(6);
        g.add_chain(1, &[0, 1]);
        g.add_chain(2, &[2, 3]);
        g.add_requests(1, &[2]);
        g.add_requests(2, &[0]);
        assert!(g.remove_requests(1));
        assert!(!g.remove_requests(1), "second removal is a no-op");
        assert!(!g.remove_requests(99), "unknown message is a no-op");

        let mut fresh = WaitGraph::new(6);
        fresh.add_chain(1, &[0, 1]);
        fresh.add_chain(2, &[2, 3]);
        fresh.add_requests(2, &[0]);
        for v in 0..6u32 {
            assert_eq!(g.edges(v), fresh.edges(v), "vertex {v} edges diverge");
        }
        assert_eq!(g.num_requests(), fresh.num_requests());
        assert_eq!(g.num_blocked(), fresh.num_blocked());
        assert_eq!(g.requests_of(1), None);
        assert_eq!(g.requests_of(2), Some(&[0][..]));
    }

    #[test]
    fn csr_matches_edge_lists() {
        use crate::adjacency::{Adjacency, Csr};
        let mut g = WaitGraph::new(5);
        g.add_chain(1, &[0, 1, 2]);
        g.add_requests(1, &[4]);
        g.add_chain(2, &[4]);
        let mut csr = Csr::new();
        g.build_csr(&mut csr);
        assert_eq!(csr.num_vertices(), 5);
        for v in 0..5u32 {
            let expect: Vec<u32> = g.edges(v).iter().map(|e| e.to).collect();
            assert_eq!(csr.neighbors(v), expect.as_slice(), "vertex {v}");
        }
    }
}
