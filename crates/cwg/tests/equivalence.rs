//! Property test: the rebuild-in-place + CSR detection path produces an
//! analysis identical to a fresh `WaitGraph` built from the same snapshot.
//!
//! One `WaitGraph` and one `DetectorScratch` are reused across several
//! consecutive random "epochs" per case — exactly the detection loop's
//! usage — so stale state from any previous rebuild would be caught.

use std::collections::HashSet;

use icn_cwg::{Analysis, DetectorScratch, WaitGraph};
use proptest::prelude::*;

/// A randomly generated wait-for snapshot: vertex count, ownership chains,
/// and per-message requests (parallel to chains; empty = not blocked).
#[derive(Clone, Debug)]
struct RandomCwg {
    n: usize,
    chains: Vec<Vec<u32>>,
    requests: Vec<Vec<u32>>,
}

fn random_cwg(seed: u64, n: usize) -> RandomCwg {
    // Deterministic pseudo-random construction from the seed.
    let mut state = seed | 1;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m.max(1)
    };
    let mut free: Vec<u32> = (0..n as u32).collect();
    let mut chains = Vec::new();
    let mut requests = Vec::new();
    while free.len() > 2 && chains.len() < n / 2 {
        let len = 1 + next(3.min(free.len() - 1));
        let chain: Vec<u32> = (0..len)
            .map(|_| {
                let i = next(free.len());
                free.swap_remove(i)
            })
            .collect();
        chains.push(chain);
        requests.push(Vec::new());
    }
    for i in 0..chains.len() {
        if next(4) == 0 {
            continue; // moving message
        }
        let own: HashSet<u32> = chains[i].iter().copied().collect();
        let mut req = Vec::new();
        for _ in 0..(1 + next(3)) {
            let t = next(n) as u32;
            if !own.contains(&t) && !req.contains(&t) {
                req.push(t);
            }
        }
        requests[i] = req;
    }
    RandomCwg {
        n,
        chains,
        requests,
    }
}

fn fill(g: &mut WaitGraph, cwg: &RandomCwg) {
    for (i, chain) in cwg.chains.iter().enumerate() {
        g.add_chain(i as u64 + 1, chain);
    }
    for (i, req) in cwg.requests.iter().enumerate() {
        if !req.is_empty() {
            g.add_requests(i as u64 + 1, req);
        }
    }
}

fn assert_same_analysis(got: &Analysis, expected: &Analysis) {
    assert_eq!(got.num_blocked, expected.num_blocked);
    assert_eq!(got.dependent, expected.dependent);
    assert_eq!(got.deadlocks.len(), expected.deadlocks.len());
    for (g, e) in got.deadlocks.iter().zip(expected.deadlocks.iter()) {
        assert_eq!(g.knot, e.knot);
        assert_eq!(g.deadlock_set, e.deadlock_set);
        assert_eq!(g.resource_set, e.resource_set);
        assert_eq!(g.cycle_density, e.cycle_density);
        assert_eq!(g.kind(), e.kind());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rebuild_in_place_matches_fresh(seed in any::<u64>()) {
        let mut reused = WaitGraph::new(0);
        let mut scratch = DetectorScratch::new();
        // Several epochs of different sizes through the same storage.
        for epoch in 0..4u64 {
            let n = 6 + ((seed ^ epoch.wrapping_mul(0x9e3779b97f4a7c15)) % 34) as usize;
            let cwg = random_cwg(seed.wrapping_add(epoch), n);

            let mut fresh = WaitGraph::new(cwg.n);
            fill(&mut fresh, &cwg);
            let expected = fresh.analyze(10_000);

            reused.reset(cwg.n);
            fill(&mut reused, &cwg);
            let got = reused.analyze_with(10_000, &mut scratch);

            assert_same_analysis(&got, &expected);
        }
    }

    #[test]
    fn in_place_victim_removal_matches_excluding_rebuild(seed in any::<u64>()) {
        let mut scratch = DetectorScratch::new();
        let cwg = random_cwg(seed, 6 + (seed % 30) as usize);

        let mut g = WaitGraph::new(cwg.n);
        fill(&mut g, &cwg);
        let analysis = g.analyze_with(10_000, &mut scratch);
        prop_assume!(analysis.has_deadlock());

        // Remove one victim per knot in place, as the recovery loop does.
        let mut victims: Vec<u64> = Vec::new();
        for d in &analysis.deadlocks {
            let v = d.deadlock_set[0];
            assert!(g.remove_requests(v), "deadlock-set member must be blocked");
            victims.push(v);
        }
        let residual_sets = g.knot_deadlock_sets(&mut scratch);

        // Reference: rebuild from scratch with the victims' requests dropped.
        let mut rebuilt = WaitGraph::new(cwg.n);
        for (i, chain) in cwg.chains.iter().enumerate() {
            rebuilt.add_chain(i as u64 + 1, chain);
        }
        for (i, req) in cwg.requests.iter().enumerate() {
            let id = i as u64 + 1;
            if !req.is_empty() && !victims.contains(&id) {
                rebuilt.add_requests(id, req);
            }
        }
        let reference = rebuilt.analyze(10_000);
        let reference_sets: Vec<Vec<u64>> = reference
            .deadlocks
            .iter()
            .map(|d| d.deadlock_set.clone())
            .collect();
        assert_eq!(residual_sets, reference_sets);

        // Edge-for-edge equality, the stronger invariant behind it.
        for v in 0..cwg.n as u32 {
            assert_eq!(g.edges(v), rebuilt.edges(v), "vertex {v} edges diverge");
        }
    }
}
