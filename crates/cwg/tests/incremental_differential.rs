//! Lockstep differential: a [`DynamicWaitGraph`] maintained through long
//! random edit histories must agree with a fresh [`WaitGraph`] rebuilt
//! from the ground-truth wait state after **every** commit — structurally
//! (`diff_against_snapshot`), on the knot verdict (`knot_deadlock_sets`
//! set-for-set), and on the internal S0/fingerprint invariants
//! (`check_invariants`).
//!
//! The generator evolves a population of blocked messages the way the
//! engine does: messages block on owner-disjoint VC chains, re-block with
//! grown or shrunk chains, migrate onto vertices freed by messages cleared
//! in the *same* commit (the two-phase hazard), and clear entirely.
//! Edit order within a cycle is shuffled, so order-insensitivity is part
//! of what the lockstep locks.

use std::collections::{BTreeMap, HashSet};

use icn_cwg::{DetectorScratch, DynamicWaitGraph, WaitGraph};
use proptest::prelude::*;

/// Ground truth: id → (chain, requests). Chains are owner-disjoint across
/// ids, as VC exclusivity guarantees in the engine.
type Truth = BTreeMap<u64, (Vec<u32>, Vec<u32>)>;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self, m: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % m.max(1)
    }
}

fn fresh_graph(n: usize, truth: &Truth) -> WaitGraph {
    let mut g = WaitGraph::new(n);
    for (&id, (chain, _)) in truth {
        g.add_chain(id, chain);
    }
    for (&id, (_, req)) in truth {
        if !req.is_empty() {
            g.add_requests(id, req);
        }
    }
    g
}

fn sorted_sets(mut sets: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    for s in &mut sets {
        s.sort_unstable();
    }
    sets.sort();
    sets
}

/// One evolution step: clear some messages, (re)block others — possibly
/// onto just-freed vertices — stage the edits in shuffled order, commit.
fn evolve(rng: &mut Lcg, n: usize, truth: &mut Truth, dwg: &mut DynamicWaitGraph) {
    #[derive(Clone)]
    enum Edit {
        Clear(u64),
        Block(u64, Vec<u32>, Vec<u32>),
    }
    let ids: Vec<u64> = truth.keys().copied().collect();
    let mut edits: Vec<Edit> = Vec::new();

    // Vertices owned by messages that keep their records this cycle.
    let mut held: HashSet<u32> = HashSet::new();
    for (_, (chain, _)) in truth.iter() {
        held.extend(chain.iter().copied());
    }

    // Clear a random subset; their vertices become fair game for blocks
    // staged in the same commit (the migration hazard).
    for &id in &ids {
        if rng.next(4) == 0 {
            for v in &truth[&id].0 {
                held.remove(v);
            }
            truth.remove(&id);
            edits.push(Edit::Clear(id));
        }
    }

    // (Re)block a few messages on free vertices. One edit per id per
    // commit: the engine emits at most one resolved update per message
    // per drain, so a duplicate would make the shuffled order ambiguous.
    let blocks = 1 + rng.next(3);
    let mut blocked_now: HashSet<u64> = HashSet::new();
    for _ in 0..blocks {
        let id = 1 + rng.next(n) as u64;
        if !blocked_now.insert(id) {
            continue;
        }
        if let Some((chain, _)) = truth.remove(&id) {
            for v in &chain {
                held.remove(v);
            }
            edits.push(Edit::Clear(id)); // defensive re-block path
        }
        let free: Vec<u32> = (0..n as u32).filter(|v| !held.contains(v)).collect();
        if free.is_empty() {
            continue;
        }
        let len = 1 + rng.next(3.min(free.len()));
        let mut chain = Vec::new();
        let mut picked = HashSet::new();
        for _ in 0..len {
            let v = free[rng.next(free.len())];
            if picked.insert(v) {
                chain.push(v);
            }
        }
        held.extend(chain.iter().copied());
        // Requests target anything outside the chain; occasionally empty
        // (a fault-stranded header with no surviving candidates).
        let mut req = Vec::new();
        if rng.next(8) != 0 {
            for _ in 0..(1 + rng.next(3)) {
                let t = rng.next(n) as u32;
                if !chain.contains(&t) && !req.contains(&t) {
                    req.push(t);
                }
            }
        }
        truth.insert(id, (chain.clone(), req.clone()));
        edits.push(Edit::Block(id, chain, req));
    }

    // Shuffle: within a commit, staging order must not matter.
    for i in (1..edits.len()).rev() {
        edits.swap(i, rng.next(i + 1));
    }
    for e in &edits {
        match e {
            Edit::Clear(id) => dwg.stage_clear(*id),
            Edit::Block(id, chain, req) => dwg.stage_blocked(*id, chain, req),
        }
    }
    dwg.commit();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole lock: after every commit of a long random history,
    /// the incremental graph is indistinguishable from a fresh rebuild.
    #[test]
    fn incremental_matches_fresh_rebuild_every_commit(seed in any::<u64>()) {
        let mut rng = Lcg(seed | 1);
        let n = 8 + rng.next(40);
        let mut truth = Truth::new();
        let mut dwg = DynamicWaitGraph::new(n);
        let mut scratch = DetectorScratch::new();
        for _cycle in 0..24 {
            evolve(&mut rng, n, &mut truth, &mut dwg);

            dwg.check_invariants();
            // Exercise the cheap reduction verdict *before* anything
            // touches the exact decomposition (diff_against_snapshot
            // refreshes the sets cache), so both paths run independently
            // and the internal cross-assertion fires.
            let live = dwg.has_knot();
            let full = fresh_graph(n, &truth);
            let diff = dwg.diff_against_snapshot(&full);
            prop_assert!(diff.is_empty(), "structural divergence: {diff:?}");

            let want = sorted_sets(full.knot_deadlock_sets(&mut scratch));
            let got = sorted_sets(dwg.knot_deadlock_sets().to_vec());
            prop_assert_eq!(live, !want.is_empty(), "reduction verdict diverged");
            prop_assert_eq!(got, want);
        }
    }

    /// Fingerprints are a pure function of the final state: replaying the
    /// surviving records into a fresh dynamic graph — in a different
    /// order, without the intermediate history — lands on the same hash
    /// and the same verdict.
    #[test]
    fn fingerprint_is_history_independent(seed in any::<u64>()) {
        let mut rng = Lcg(seed | 1);
        let n = 8 + rng.next(40);
        let mut truth = Truth::new();
        let mut dwg = DynamicWaitGraph::new(n);
        for _ in 0..16 {
            evolve(&mut rng, n, &mut truth, &mut dwg);
        }
        let mut replay = DynamicWaitGraph::new(n);
        for (&id, (chain, req)) in truth.iter().rev() {
            replay.stage_blocked(id, chain, req);
        }
        replay.commit();
        prop_assert_eq!(replay.fingerprint(), dwg.fingerprint());
        prop_assert_eq!(
            sorted_sets(replay.knot_deadlock_sets().to_vec()),
            sorted_sets(dwg.knot_deadlock_sets().to_vec())
        );
    }
}
