//! Edge-case and property coverage for k-ary n-cube geometry.
//!
//! The constructions exercised here sit at the boundaries of the parameter
//! space the experiments sweep: radix-2 tori (where the plus and minus
//! neighbours are the *same* node reached over two parallel channels),
//! single-dimension rings and lines, meshes with their truncated boundary
//! ports, and the maximum dimension count. Identifier round-trips and
//! distance-metric laws are checked property-style on top.

use icn_topology::{ChannelId, Coords, Direction, KAryNCube, NodeId, RoutingOffset, MAX_DIMS};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Radix-2 tori: +/- neighbours coincide, channels come in parallel pairs.
// ---------------------------------------------------------------------------

#[test]
fn radix2_torus_plus_and_minus_reach_the_same_node() {
    let t = KAryNCube::torus(2, 3, true);
    for node in 0..t.num_nodes() as u32 {
        for dim in 0..t.n() {
            let plus = t.neighbor(NodeId(node), dim, Direction::Plus);
            let minus = t.neighbor(NodeId(node), dim, Direction::Minus);
            assert_eq!(plus, minus, "k=2 wrap: both directions are one hop");
            assert_ne!(plus, Some(NodeId(node)), "never a self-loop");
        }
    }
}

#[test]
fn radix2_torus_has_parallel_channels() {
    // Between each adjacent pair a radix-2 bidirectional torus carries TWO
    // distinct channels per dimension (one Plus, one Minus) — unlike the
    // hypercube (2-ary mesh), which has exactly one.
    let t = KAryNCube::torus(2, 3, true);
    let h = KAryNCube::hypercube(3);
    assert_eq!(t.num_nodes(), h.num_nodes());
    assert_eq!(t.num_channels(), 2 * h.num_channels());
    for node in 0..t.num_nodes() as u32 {
        for dim in 0..3 {
            let p = t.channel_from(NodeId(node), dim, Direction::Plus).unwrap();
            let m = t.channel_from(NodeId(node), dim, Direction::Minus).unwrap();
            assert_ne!(p, m, "parallel channels are distinct resources");
            assert_eq!(t.channel(p).dst, t.channel(m).dst);
        }
    }
}

#[test]
fn radix2_torus_offsets_are_always_ties() {
    // Any misaligned dimension in a radix-2 bidirectional torus has offset
    // exactly k/2 = 1, so minimal routing may go either way.
    let t = KAryNCube::torus(2, 4, true);
    for a in 0..t.num_nodes() as u32 {
        for b in 0..t.num_nodes() as u32 {
            for dim in 0..t.n() {
                match t.routing_offset(NodeId(a), NodeId(b), dim) {
                    RoutingOffset::Zero => {}
                    RoutingOffset::Either(1) => {}
                    other => panic!("unexpected offset {other:?}"),
                }
            }
        }
    }
    // Distance equals Hamming distance on the coordinate bits.
    assert_eq!(t.distance(NodeId(0b0000), NodeId(0b1111)), 4);
}

#[test]
fn radix2_wraparound_split() {
    // With k=2 every dimension's dateline sits between its two nodes: the
    // Plus channel out of coordinate 1 wraps, as does Minus out of 0 —
    // exactly half of all channels.
    let t = KAryNCube::torus(2, 3, true);
    let wraps = (0..t.num_channels() as u32)
        .filter(|&c| t.is_wraparound(ChannelId(c)))
        .count();
    assert_eq!(wraps, t.num_channels() / 2);
}

// ---------------------------------------------------------------------------
// Single-dimension degenerates: rings and lines.
// ---------------------------------------------------------------------------

#[test]
fn unidirectional_ring_distances_are_asymmetric() {
    let r = KAryNCube::torus(5, 1, false);
    assert_eq!(r.num_nodes(), 5);
    assert_eq!(r.num_channels(), 5);
    for a in 0..5u32 {
        for b in 0..5u32 {
            let d = r.distance(NodeId(a), NodeId(b));
            assert_eq!(d, (b + 5 - a) % 5, "forward-only modular distance");
        }
    }
    // Going "back" one node costs k-1 hops.
    assert_eq!(r.distance(NodeId(1), NodeId(0)), 4);
    assert_eq!(r.distance(NodeId(0), NodeId(1)), 1);
}

#[test]
fn bidirectional_ring_takes_the_short_way() {
    let r = KAryNCube::torus(6, 1, true);
    assert_eq!(r.distance(NodeId(0), NodeId(5)), 1);
    assert_eq!(r.distance(NodeId(0), NodeId(3)), 3);
    assert_eq!(
        r.routing_offset(NodeId(0), NodeId(3), 0),
        RoutingOffset::Either(3),
        "antipodal offset on an even ring is a tie"
    );
    assert_eq!(
        r.routing_offset(NodeId(0), NodeId(4), 0),
        RoutingOffset::Dir(Direction::Minus, 2)
    );
}

#[test]
fn line_distances_and_endpoints() {
    let l = KAryNCube::mesh(7, 1);
    assert_eq!(l.num_nodes(), 7);
    assert_eq!(l.num_channels(), 12); // 6 pairs x 2 directions
    for a in 0..7u32 {
        for b in 0..7u32 {
            assert_eq!(l.distance(NodeId(a), NodeId(b)), a.abs_diff(b));
        }
    }
    // Endpoints have exactly one outgoing channel; interior nodes two.
    assert_eq!(l.channels_from(NodeId(0)).len(), 1);
    assert_eq!(l.channels_from(NodeId(6)).len(), 1);
    assert_eq!(l.channels_from(NodeId(3)).len(), 2);
    assert_eq!(l.neighbor(NodeId(0), 0, Direction::Minus), None);
    assert_eq!(l.neighbor(NodeId(6), 0, Direction::Plus), None);
}

#[test]
fn max_dims_roundtrip() {
    let t = KAryNCube::torus(2, MAX_DIMS, true);
    assert_eq!(t.num_nodes(), 1 << MAX_DIMS);
    for id in 0..t.num_nodes() as u32 {
        let n = NodeId(id);
        let c = t.coords(n);
        assert_eq!(c.dims(), MAX_DIMS);
        assert_eq!(t.node_at(&c), n);
    }
    // Opposite corners are MAX_DIMS hops apart.
    assert_eq!(
        t.distance(NodeId(0), NodeId((1 << MAX_DIMS) - 1)),
        MAX_DIMS as u32
    );
}

// ---------------------------------------------------------------------------
// Mesh boundaries.
// ---------------------------------------------------------------------------

#[test]
fn mesh_boundary_port_census() {
    // 4x4 mesh: corners keep 2 of 4 ports, edges 3, interior all 4.
    let m = KAryNCube::mesh(4, 2);
    let mut by_degree = [0usize; 5];
    for node in 0..m.num_nodes() as u32 {
        by_degree[m.channels_from(NodeId(node)).len()] += 1;
    }
    assert_eq!(by_degree, [0, 0, 4, 8, 4]);
    // Every missing port is a genuine boundary: the neighbour is absent too.
    for node in 0..m.num_nodes() as u32 {
        for dim in 0..m.n() {
            for dir in [Direction::Plus, Direction::Minus] {
                assert_eq!(
                    m.channel_from(NodeId(node), dim, dir).is_some(),
                    m.neighbor(NodeId(node), dim, dir).is_some()
                );
            }
        }
    }
}

#[test]
fn mesh_channels_pair_up() {
    // Bidirectional meshes: every channel has exactly one reverse channel.
    let m = KAryNCube::mesh(5, 2);
    for id in 0..m.num_channels() as u32 {
        let info = *m.channel(ChannelId(id));
        let back = m
            .channel_between(info.dst, info.src)
            .expect("reverse channel exists");
        let binfo = m.channel(back);
        assert_eq!(binfo.dim, info.dim);
        assert_eq!(binfo.dir, info.dir.opposite());
    }
}

// ---------------------------------------------------------------------------
// Identifier round-trips and metric laws, property-style.
// ---------------------------------------------------------------------------

/// Topology selection shared by the property tests: mixes tori (both
/// directionalities), meshes, rings, lines, and the hypercube.
fn topo(i: usize) -> KAryNCube {
    match i % 8 {
        0 => KAryNCube::torus(4, 2, true),
        1 => KAryNCube::torus(5, 2, false),
        2 => KAryNCube::torus(2, 5, true),
        3 => KAryNCube::mesh(4, 2),
        4 => KAryNCube::mesh(3, 3),
        5 => KAryNCube::torus(9, 1, true),
        6 => KAryNCube::mesh(8, 1),
        _ => KAryNCube::hypercube(5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn node_id_roundtrip(i in 0usize..8, raw in any::<u32>()) {
        let t = topo(i);
        let n = NodeId(raw % t.num_nodes() as u32);
        let c = t.coords(n);
        prop_assert_eq!(c.dims(), t.n());
        for d in 0..t.n() {
            prop_assert!(c.get(d) < t.k());
        }
        prop_assert_eq!(t.node_at(&c), n);
        // And the reverse trip from arbitrary in-range coordinates.
        let vals: Vec<u16> = (0..t.n()).map(|d| (c.get(d) + 1) % t.k()).collect();
        let shifted = t.node_at(&Coords::new(&vals));
        prop_assert_eq!(t.coords(shifted).as_slice(), &vals[..]);
    }

    #[test]
    fn channel_id_roundtrip(i in 0usize..8, raw in any::<u32>()) {
        let t = topo(i);
        let c = ChannelId(raw % t.num_channels() as u32);
        let info = *t.channel(c);
        prop_assert_eq!(t.channel_from(info.src, info.dim as usize, info.dir), Some(c));
        prop_assert_eq!(t.neighbor(info.src, info.dim as usize, info.dir), Some(info.dst));
        prop_assert!(t.channels_from(info.src).contains(&c));
        prop_assert_eq!(t.distance(info.src, info.dst), 1);
    }

    #[test]
    fn distance_is_a_metric_on_bidirectional_topologies(
        i in 0usize..8,
        ra in any::<u32>(),
        rb in any::<u32>(),
        rc in any::<u32>(),
    ) {
        let t = topo(i);
        let nn = t.num_nodes() as u32;
        let (a, b, c) = (NodeId(ra % nn), NodeId(rb % nn), NodeId(rc % nn));
        // Identity of indiscernibles holds regardless of directionality.
        prop_assert_eq!(t.distance(a, a), 0);
        prop_assert_eq!(t.distance(a, b) == 0, a == b);
        if t.is_bidirectional() {
            prop_assert_eq!(t.distance(a, b), t.distance(b, a), "symmetry");
        }
        // Triangle inequality: walking via b can never beat the minimum.
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    #[test]
    fn distance_decomposes_over_dimension_offsets(i in 0usize..8, ra in any::<u32>(), rb in any::<u32>()) {
        let t = topo(i);
        let nn = t.num_nodes() as u32;
        let (a, b) = (NodeId(ra % nn), NodeId(rb % nn));
        let sum: u32 = (0..t.n())
            .map(|d| match t.routing_offset(a, b, d) {
                RoutingOffset::Zero => 0,
                RoutingOffset::Dir(_, h) | RoutingOffset::Either(h) => h,
            })
            .sum();
        prop_assert_eq!(t.distance(a, b), sum);
    }

    #[test]
    fn neighbor_is_undone_by_the_opposite_step(i in 0usize..8, raw in any::<u32>(), dim_raw in any::<usize>()) {
        let t = topo(i);
        prop_assume!(t.is_bidirectional());
        let n = NodeId(raw % t.num_nodes() as u32);
        let dim = dim_raw % t.n();
        for dir in [Direction::Plus, Direction::Minus] {
            if let Some(m) = t.neighbor(n, dim, dir) {
                prop_assert_eq!(t.neighbor(m, dim, dir.opposite()), Some(n));
            }
        }
    }

    #[test]
    fn avg_distance_is_bounded_by_the_diameter(i in 0usize..8) {
        let t = topo(i);
        let diameter = (0..t.num_nodes() as u32)
            .flat_map(|a| (0..t.num_nodes() as u32).map(move |b| (a, b)))
            .map(|(a, b)| t.distance(NodeId(a), NodeId(b)))
            .max()
            .unwrap();
        prop_assert!(t.avg_distance() > 0.0);
        prop_assert!(t.avg_distance() <= diameter as f64);
        prop_assert!(t.capacity_flits_per_node_cycle() > 0.0);
    }
}
