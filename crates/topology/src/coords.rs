//! Fixed-capacity node coordinates.

use crate::MAX_DIMS;

/// Coordinates of a node in a k-ary n-cube, one entry per dimension.
///
/// Stored inline (no allocation) since the simulator converts node ids to
/// coordinates in its innermost routing loop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Coords {
    c: [u16; MAX_DIMS],
    n: usize,
}

impl Coords {
    /// Builds coordinates from a slice (length = number of dimensions).
    ///
    /// # Panics
    /// Panics if `vals.len() > MAX_DIMS`.
    pub fn new(vals: &[u16]) -> Self {
        assert!(vals.len() <= MAX_DIMS, "too many dimensions");
        let mut c = [0u16; MAX_DIMS];
        c[..vals.len()].copy_from_slice(vals);
        Coords { c, n: vals.len() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.n
    }

    /// Coordinate along dimension `d`.
    #[inline]
    pub fn get(&self, d: usize) -> u16 {
        debug_assert!(d < self.n);
        self.c[d]
    }

    /// Replaces the coordinate along dimension `d`.
    #[inline]
    pub fn set(&mut self, d: usize, v: u16) {
        debug_assert!(d < self.n);
        self.c[d] = v;
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u16] {
        &self.c[..self.n]
    }

    /// Iterates over the per-dimension coordinates.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = Coords::new(&[3, 1, 4]);
        assert_eq!(c.dims(), 3);
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(2), 4);
        assert_eq!(c.as_slice(), &[3, 1, 4]);
    }

    #[test]
    fn set_updates_single_dimension() {
        let mut c = Coords::new(&[0, 0]);
        c.set(1, 9);
        assert_eq!(c.as_slice(), &[0, 9]);
    }

    #[test]
    fn equality_ignores_unused_slots() {
        let a = Coords::new(&[1, 2]);
        let b = Coords::new(&[1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too many dimensions")]
    fn too_many_dims_panics() {
        let _ = Coords::new(&[0; MAX_DIMS + 1]);
    }
}
