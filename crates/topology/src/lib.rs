//! Interconnection-network geometry for the deadlock characterization study.
//!
//! The paper evaluates k-ary n-cube networks (tori) with unidirectional or
//! bidirectional physical channels, plus meshes as the non-wrapped variant.
//! This crate owns the *static* structure of a network: node naming,
//! physical-channel naming, adjacency, and distance metrics. Everything that
//! moves (flits, virtual channels, messages) lives in `icn-sim`.
//!
//! Channels are **unidirectional** physical links: a bidirectional torus has
//! two channels per (node, dimension, direction-neighbor) pair, one in each
//! direction. Channel ids are dense (`0..num_channels()`), which lets the
//! simulator index per-channel state with plain vectors.
//!
//! ```
//! use icn_topology::{KAryNCube, NodeId};
//!
//! let torus = KAryNCube::torus(16, 2, true); // the paper's default network
//! assert_eq!(torus.num_nodes(), 256);
//! assert_eq!(torus.num_channels(), 1024);
//! assert_eq!(torus.distance(NodeId(0), NodeId(255)), 2); // wraparound
//! ```

mod coords;
mod ids;
mod karyncube;
mod shard;

pub use coords::Coords;
pub use ids::{ChannelId, Direction, NodeId};
pub use karyncube::{ChannelInfo, KAryNCube, RoutingOffset};
pub use shard::{shard_stream_seed, ShardPlan};

/// Maximum supported number of dimensions.
///
/// Eight dimensions of radix ≥ 2 already exceeds every configuration in the
/// paper (the largest is a 4-ary 4-cube); a fixed bound keeps [`Coords`]
/// allocation-free.
pub const MAX_DIMS: usize = 8;
