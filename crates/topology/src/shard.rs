//! Spatial partitioning of a network into deterministic shards.
//!
//! A [`ShardPlan`] cuts the node id space `0..num_nodes` into contiguous,
//! balanced ranges — one per shard. Because [`KAryNCube`](crate::KAryNCube)
//! enumerates channels by ascending source node, every shard's *outgoing*
//! channels also form one contiguous `ChannelId` range, which is what lets
//! the simulator keep all of its per-channel hot state in flat vectors and
//! still hand each shard a disjoint slice of it.
//!
//! The plan is pure geometry: it never looks at dynamic simulator state, so
//! the same `(num_nodes, shards)` pair always yields byte-identical ranges
//! on every build. That determinism is the foundation of the sharded
//! engine's digest invariance (see `icn-sim`).
//!
//! The module also owns [`shard_stream_seed`], the deterministic SplitMix64
//! stream splitter that derives one RNG seed per shard from the run seed —
//! the mechanism for per-shard traffic streams without any coordination.

use crate::{ChannelId, KAryNCube, NodeId};
use core::ops::Range;

/// A contiguous spatial partition of a network into `shards` pieces.
///
/// Invariants (asserted in the constructor, property-tested):
/// * node ranges are contiguous, disjoint, ascending, and cover
///   `0..num_nodes`;
/// * range sizes differ by at most one node (balanced);
/// * channel ranges are exactly the outgoing channels of the node range.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// First node of each shard, plus a trailing `num_nodes` sentinel.
    node_starts: Vec<u32>,
    /// First outgoing channel of each shard, plus a trailing
    /// `num_channels` sentinel.
    chan_starts: Vec<u32>,
    /// `node id -> owning shard`.
    node_shard: Vec<u16>,
    /// `channel id -> shard owning the channel's *destination* node`.
    /// A message parked at the head of channel `c` is allocated by (and
    /// its wait state belongs to) `chan_dst_shard[c]`.
    chan_dst_shard: Vec<u16>,
    /// Channels whose source and destination nodes live in different
    /// shards, ascending. These are the only links a flit can cross a
    /// shard boundary on.
    boundary: Vec<ChannelId>,
}

impl ShardPlan {
    /// Builds a balanced contiguous plan for `topo` with `shards` pieces.
    ///
    /// `shards` is clamped to `1..=num_nodes`: more shards than nodes
    /// would leave empty ranges with nothing to own.
    pub fn new(topo: &KAryNCube, shards: usize) -> Self {
        let nodes = topo.num_nodes();
        let s = shards.clamp(1, nodes);
        assert!(s <= u16::MAX as usize, "shard count exceeds u16 range");

        // Balanced split: the first `nodes % s` shards get one extra node.
        let base = nodes / s;
        let extra = nodes % s;
        let mut node_starts = Vec::with_capacity(s + 1);
        let mut at = 0usize;
        for i in 0..s {
            node_starts.push(at as u32);
            at += base + usize::from(i < extra);
        }
        debug_assert_eq!(at, nodes);
        node_starts.push(nodes as u32);

        let mut node_shard = vec![0u16; nodes];
        for shard in 0..s {
            for n in node_starts[shard]..node_starts[shard + 1] {
                node_shard[n as usize] = shard as u16;
            }
        }

        // Channels are enumerated by ascending source node, so a shard's
        // outgoing channels are the contiguous run starting at its first
        // node's first channel.
        let chan_starts: Vec<u32> = node_starts
            .iter()
            .map(|&n| {
                if (n as usize) < nodes {
                    topo.channels_from(NodeId(n))
                        .first()
                        .map(|c| c.0)
                        .unwrap_or(topo.num_channels() as u32)
                } else {
                    topo.num_channels() as u32
                }
            })
            .collect();

        let mut chan_dst_shard = Vec::with_capacity(topo.num_channels());
        let mut boundary = Vec::new();
        for (idx, info) in topo.channels().iter().enumerate() {
            let dst_shard = node_shard[info.dst.idx()];
            chan_dst_shard.push(dst_shard);
            if node_shard[info.src.idx()] != dst_shard {
                boundary.push(ChannelId(idx as u32));
            }
        }

        let plan = ShardPlan {
            node_starts,
            chan_starts,
            node_shard,
            chan_dst_shard,
            boundary,
        };
        plan.check(topo);
        plan
    }

    fn check(&self, topo: &KAryNCube) {
        let s = self.shards();
        debug_assert_eq!(self.node_starts[0], 0);
        debug_assert_eq!(*self.node_starts.last().unwrap() as usize, topo.num_nodes());
        debug_assert_eq!(self.chan_starts[0], 0);
        debug_assert_eq!(
            *self.chan_starts.last().unwrap() as usize,
            topo.num_channels()
        );
        for i in 0..s {
            debug_assert!(self.node_starts[i] < self.node_starts[i + 1]);
            debug_assert!(self.chan_starts[i] <= self.chan_starts[i + 1]);
        }
    }

    /// Number of shards in the plan.
    #[inline]
    pub fn shards(&self) -> usize {
        self.node_starts.len() - 1
    }

    /// The contiguous node range owned by `shard`.
    #[inline]
    pub fn node_range(&self, shard: usize) -> Range<usize> {
        self.node_starts[shard] as usize..self.node_starts[shard + 1] as usize
    }

    /// The contiguous range of channels *sourced* in `shard`'s nodes.
    #[inline]
    pub fn chan_range(&self, shard: usize) -> Range<usize> {
        self.chan_starts[shard] as usize..self.chan_starts[shard + 1] as usize
    }

    /// The shard owning node `n`.
    #[inline]
    pub fn shard_of_node(&self, n: NodeId) -> usize {
        self.node_shard[n.idx()] as usize
    }

    /// The shard owning the destination router of channel `c` — the shard
    /// that allocates for (and reports the wait state of) a message whose
    /// header sits at the far end of `c`.
    #[inline]
    pub fn shard_of_chan_dst(&self, c: ChannelId) -> usize {
        self.chan_dst_shard[c.idx()] as usize
    }

    /// Channels crossing a shard boundary (`src` and `dst` in different
    /// shards), in ascending channel order.
    #[inline]
    pub fn boundary_channels(&self) -> &[ChannelId] {
        &self.boundary
    }
}

/// Derives the RNG stream seed for `shard` from the run seed.
///
/// SplitMix64 finalizer over `run_seed + (shard+1) * golden-gamma`: the
/// canonical stream-splitting construction (Steele et al.), giving each
/// shard a statistically independent stream while remaining a pure
/// function of `(run_seed, shard)` — reordering or re-running shards can
/// never change what any shard draws. Shard 0's stream is distinct from
/// the plain run seed, so a sharded traffic generator cannot silently
/// alias the serial one.
#[inline]
pub fn shard_stream_seed(run_seed: u64, shard: usize) -> u64 {
    let mut z = run_seed.wrapping_add((shard as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans() -> Vec<(KAryNCube, usize)> {
        let mut out = Vec::new();
        for shards in [1, 2, 3, 4, 7, 8] {
            out.push((KAryNCube::torus(4, 2, true), shards));
            out.push((KAryNCube::torus(8, 2, false), shards));
            out.push((KAryNCube::mesh(4, 2), shards));
            out.push((KAryNCube::torus(4, 3, true), shards));
        }
        out
    }

    #[test]
    fn node_ranges_partition_and_balance() {
        for (topo, shards) in plans() {
            let plan = ShardPlan::new(&topo, shards);
            assert_eq!(plan.shards(), shards.min(topo.num_nodes()));
            let mut covered = 0usize;
            let mut sizes = Vec::new();
            for s in 0..plan.shards() {
                let r = plan.node_range(s);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                covered = r.end;
                sizes.push(r.len());
                for n in r {
                    assert_eq!(plan.shard_of_node(NodeId(n as u32)), s);
                }
            }
            assert_eq!(covered, topo.num_nodes());
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced within one node: {sizes:?}");
        }
    }

    #[test]
    fn chan_ranges_are_exactly_the_outgoing_channels() {
        for (topo, shards) in plans() {
            let plan = ShardPlan::new(&topo, shards);
            let mut covered = 0usize;
            for s in 0..plan.shards() {
                let r = plan.chan_range(s);
                assert_eq!(r.start, covered);
                covered = r.end;
                for c in r {
                    let info = topo.channel(ChannelId(c as u32));
                    assert_eq!(
                        plan.shard_of_node(info.src),
                        s,
                        "channel {c} sourced outside its shard"
                    );
                }
            }
            assert_eq!(covered, topo.num_channels());
        }
    }

    #[test]
    fn boundary_channels_cross_and_only_cross() {
        for (topo, shards) in plans() {
            let plan = ShardPlan::new(&topo, shards);
            let boundary: std::collections::HashSet<u32> =
                plan.boundary_channels().iter().map(|c| c.0).collect();
            for (idx, info) in topo.channels().iter().enumerate() {
                let crosses = plan.shard_of_node(info.src) != plan.shard_of_node(info.dst);
                assert_eq!(
                    boundary.contains(&(idx as u32)),
                    crosses,
                    "channel {idx} boundary classification"
                );
                assert_eq!(
                    plan.shard_of_chan_dst(ChannelId(idx as u32)),
                    plan.shard_of_node(info.dst)
                );
            }
            // One shard has no boundary at all.
            if plan.shards() == 1 {
                assert!(boundary.is_empty());
            }
            // Ascending order.
            let ids: Vec<u32> = plan.boundary_channels().iter().map(|c| c.0).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted);
        }
    }

    #[test]
    fn oversharding_clamps_to_node_count() {
        let topo = KAryNCube::torus(2, 1, true);
        let plan = ShardPlan::new(&topo, 64);
        assert_eq!(plan.shards(), topo.num_nodes());
    }

    #[test]
    fn stream_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..8).map(|s| shard_stream_seed(42, s)).collect();
        let b: Vec<u64> = (0..8).map(|s| shard_stream_seed(42, s)).collect();
        assert_eq!(a, b, "pure function of (seed, shard)");
        let uniq: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(uniq.len(), 8, "streams must not collide");
        assert_ne!(shard_stream_seed(42, 0), 42, "shard 0 is a distinct stream");
        assert_ne!(
            shard_stream_seed(42, 0),
            shard_stream_seed(43, 0),
            "different run seeds give different streams"
        );
    }
}
