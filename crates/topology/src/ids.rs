//! Dense integer identifiers for nodes and physical channels.

use core::fmt;

/// Identifies a network node (router + local processor).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a unidirectional physical channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// The id as a `usize`, for indexing per-channel tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Travel direction along a dimension.
///
/// `Plus` moves towards increasing coordinates (wrapping in a torus);
/// `Minus` towards decreasing ones. Unidirectional tori only provide `Plus`
/// channels, which is what forces the "circular overlap" the paper
/// identifies as the major contributor to deadlock frequency in uni-tori.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    Plus,
    Minus,
}

impl Direction {
    /// Port offset within a node's channel block (Plus = 0, Minus = 1).
    #[inline]
    pub fn port_offset(self) -> usize {
        match self {
            Direction::Plus => 0,
            Direction::Minus => 1,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Plus => Direction::Minus,
            Direction::Minus => Direction::Plus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{}", ChannelId(17)), "c17");
    }

    #[test]
    fn direction_opposite_is_involution() {
        assert_eq!(Direction::Plus.opposite(), Direction::Minus);
        assert_eq!(Direction::Minus.opposite(), Direction::Plus);
        assert_eq!(Direction::Plus.opposite().opposite(), Direction::Plus);
    }

    #[test]
    fn port_offsets_are_distinct() {
        assert_ne!(
            Direction::Plus.port_offset(),
            Direction::Minus.port_offset()
        );
    }
}
