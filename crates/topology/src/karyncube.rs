//! k-ary n-cube networks: tori (uni- or bidirectional) and meshes.

use crate::{ChannelId, Coords, Direction, NodeId, MAX_DIMS};

/// Static description of one unidirectional physical channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelInfo {
    /// Node the channel leaves from.
    pub src: NodeId,
    /// Node the channel arrives at (where its edge buffers live).
    pub dst: NodeId,
    /// Dimension the channel travels along.
    pub dim: u8,
    /// Direction of travel along that dimension.
    pub dir: Direction,
}

/// How far, and which way, a dimension still needs to be corrected to reach
/// a destination under *minimal* routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingOffset {
    /// Already aligned in this dimension.
    Zero,
    /// Must travel `hops` in the given direction.
    Dir(Direction, u32),
    /// Bidirectional torus with the offset exactly k/2: both directions are
    /// minimal (`hops` each way).
    Either(u32),
}

/// A k-ary n-cube: `k` nodes along each of `n` dimensions.
///
/// * `wrap = true` gives a torus; `false` a mesh.
/// * `bidirectional = false` gives channels only in the `Plus` direction
///   (the classic unidirectional torus); meshes must be bidirectional to
///   stay connected.
#[derive(Clone, Debug)]
pub struct KAryNCube {
    k: u16,
    n: usize,
    wrap: bool,
    bidirectional: bool,
    num_nodes: u32,
    channels: Vec<ChannelInfo>,
    /// `node * ports_per_node + port -> channel id` (`u32::MAX` = no channel,
    /// which happens at mesh edges).
    port_table: Vec<u32>,
    /// Outgoing channels per node, flattened; indexed via `out_offsets`.
    out_flat: Vec<ChannelId>,
    out_offsets: Vec<u32>,
    avg_distance: f64,
}

const NO_CHANNEL: u32 = u32::MAX;

impl KAryNCube {
    /// Builds a torus with `k` nodes per dimension and `n` dimensions.
    pub fn torus(k: u16, n: usize, bidirectional: bool) -> Self {
        Self::build(k, n, true, bidirectional)
    }

    /// Builds a bidirectional mesh (no wraparound channels).
    pub fn mesh(k: u16, n: usize) -> Self {
        Self::build(k, n, false, true)
    }

    /// Builds a binary hypercube of dimension `n` (2^n nodes).
    ///
    /// A 2-ary n-mesh *is* the hypercube: each dimension holds two nodes
    /// joined by one channel in each direction (a 2-ary torus would
    /// instead duplicate them as wraparounds). Dimension-order routing on
    /// it is the classic e-cube algorithm.
    pub fn hypercube(n: usize) -> Self {
        Self::mesh(2, n)
    }

    fn build(k: u16, n: usize, wrap: bool, bidirectional: bool) -> Self {
        assert!(k >= 2, "radix must be at least 2");
        assert!(
            (1..=MAX_DIMS).contains(&n),
            "1..={MAX_DIMS} dimensions required"
        );
        assert!(
            wrap || bidirectional,
            "a unidirectional mesh is disconnected"
        );
        let num_nodes = (k as u64).checked_pow(n as u32).expect("k^n overflow");
        assert!(num_nodes <= u32::MAX as u64, "too many nodes");
        let num_nodes = num_nodes as u32;

        let dirs: &[Direction] = if bidirectional {
            &[Direction::Plus, Direction::Minus]
        } else {
            &[Direction::Plus]
        };
        let ports_per_node = n * dirs.len();

        let mut channels = Vec::new();
        let mut port_table = vec![NO_CHANNEL; num_nodes as usize * ports_per_node];
        let mut out_flat = Vec::new();
        let mut out_offsets = Vec::with_capacity(num_nodes as usize + 1);

        let proto = Self {
            k,
            n,
            wrap,
            bidirectional,
            num_nodes,
            channels: Vec::new(),
            port_table: Vec::new(),
            out_flat: Vec::new(),
            out_offsets: Vec::new(),
            avg_distance: 0.0,
        };

        for node in 0..num_nodes {
            out_offsets.push(out_flat.len() as u32);
            for dim in 0..n {
                for &dir in dirs {
                    let Some(dst) = proto.neighbor(NodeId(node), dim, dir) else {
                        continue;
                    };
                    let id = ChannelId(channels.len() as u32);
                    channels.push(ChannelInfo {
                        src: NodeId(node),
                        dst,
                        dim: dim as u8,
                        dir,
                    });
                    let port = dim * dirs.len() + dir.port_offset();
                    port_table[node as usize * ports_per_node + port] = id.0;
                    out_flat.push(id);
                }
            }
        }
        out_offsets.push(out_flat.len() as u32);

        let mut topo = Self {
            k,
            n,
            wrap,
            bidirectional,
            num_nodes,
            channels,
            port_table,
            out_flat,
            out_offsets,
            avg_distance: 0.0,
        };
        topo.avg_distance = topo.compute_avg_distance();
        topo
    }

    /// Radix (nodes per dimension).
    #[inline]
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Number of dimensions.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// True for tori, false for meshes.
    #[inline]
    pub fn is_torus(&self) -> bool {
        self.wrap
    }

    /// True when channels exist in both directions along each dimension.
    #[inline]
    pub fn is_bidirectional(&self) -> bool {
        self.bidirectional
    }

    /// Total node count (`k^n`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Total unidirectional physical channel count.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Ports (potential outgoing channels) per node.
    #[inline]
    pub fn ports_per_node(&self) -> usize {
        self.n * if self.bidirectional { 2 } else { 1 }
    }

    /// Static description of a channel.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &ChannelInfo {
        &self.channels[id.idx()]
    }

    /// All channels, indexable by [`ChannelId::idx`].
    #[inline]
    pub fn channels(&self) -> &[ChannelInfo] {
        &self.channels
    }

    /// Converts a node id to per-dimension coordinates.
    pub fn coords(&self, node: NodeId) -> Coords {
        debug_assert!(node.0 < self.num_nodes);
        let mut c = [0u16; MAX_DIMS];
        let mut rest = node.0;
        let k = self.k as u32;
        for slot in c.iter_mut().take(self.n) {
            *slot = (rest % k) as u16;
            rest /= k;
        }
        Coords::new(&c[..self.n])
    }

    /// Converts coordinates back to a node id.
    pub fn node_at(&self, coords: &Coords) -> NodeId {
        debug_assert_eq!(coords.dims(), self.n);
        let k = self.k as u64;
        let mut id = 0u64;
        for d in (0..self.n).rev() {
            debug_assert!(coords.get(d) < self.k);
            id = id * k + coords.get(d) as u64;
        }
        NodeId(id as u32)
    }

    /// The node one hop away along `dim` in direction `dir`, if the channel
    /// exists (mesh edges return `None`).
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        debug_assert!(dim < self.n);
        let mut c = self.coords_raw(node);
        let cur = c[dim];
        let next = match (dir, self.wrap) {
            (Direction::Plus, true) => (cur + 1) % self.k,
            (Direction::Minus, true) => (cur + self.k - 1) % self.k,
            (Direction::Plus, false) => {
                if cur + 1 >= self.k {
                    return None;
                }
                cur + 1
            }
            (Direction::Minus, false) => {
                if cur == 0 {
                    return None;
                }
                cur - 1
            }
        };
        c[dim] = next;
        Some(self.node_at(&Coords::new(&c[..self.n])))
    }

    fn coords_raw(&self, node: NodeId) -> [u16; MAX_DIMS] {
        let mut c = [0u16; MAX_DIMS];
        let mut rest = node.0;
        let k = self.k as u32;
        for slot in c.iter_mut().take(self.n) {
            *slot = (rest % k) as u16;
            rest /= k;
        }
        c
    }

    /// The outgoing channel at (`node`, `dim`, `dir`), if present.
    pub fn channel_from(&self, node: NodeId, dim: usize, dir: Direction) -> Option<ChannelId> {
        debug_assert!(dim < self.n);
        if !self.bidirectional && dir == Direction::Minus {
            return None;
        }
        let dirs = if self.bidirectional { 2 } else { 1 };
        let port = dim * dirs + dir.port_offset();
        let raw = self.port_table[node.idx() * self.ports_per_node() + port];
        (raw != NO_CHANNEL).then_some(ChannelId(raw))
    }

    /// All outgoing channels of a node.
    pub fn channels_from(&self, node: NodeId) -> &[ChannelId] {
        let lo = self.out_offsets[node.idx()] as usize;
        let hi = self.out_offsets[node.idx() + 1] as usize;
        &self.out_flat[lo..hi]
    }

    /// The channel from `a` to adjacent node `b`, if any.
    pub fn channel_between(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        self.channels_from(a)
            .iter()
            .copied()
            .find(|&c| self.channel(c).dst == b)
    }

    /// Per-dimension routing offset from `cur` to `dst` under minimal routing.
    pub fn routing_offset(&self, cur: NodeId, dst: NodeId, dim: usize) -> RoutingOffset {
        let a = self.coords_raw(cur)[dim] as i32;
        let b = self.coords_raw(dst)[dim] as i32;
        let k = self.k as i32;
        if a == b {
            return RoutingOffset::Zero;
        }
        if !self.wrap {
            return if b > a {
                RoutingOffset::Dir(Direction::Plus, (b - a) as u32)
            } else {
                RoutingOffset::Dir(Direction::Minus, (a - b) as u32)
            };
        }
        if !self.bidirectional {
            return RoutingOffset::Dir(Direction::Plus, b.wrapping_sub(a).rem_euclid(k) as u32);
        }
        let fwd = (b - a).rem_euclid(k) as u32;
        let bwd = (a - b).rem_euclid(k) as u32;
        match fwd.cmp(&bwd) {
            core::cmp::Ordering::Less => RoutingOffset::Dir(Direction::Plus, fwd),
            core::cmp::Ordering::Greater => RoutingOffset::Dir(Direction::Minus, bwd),
            core::cmp::Ordering::Equal => RoutingOffset::Either(fwd),
        }
    }

    /// Minimal hop distance from `a` to `b`.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (0..self.n)
            .map(|d| match self.routing_offset(a, b, d) {
                RoutingOffset::Zero => 0,
                RoutingOffset::Dir(_, h) | RoutingOffset::Either(h) => h,
            })
            .sum()
    }

    /// Average inter-node distance over all ordered pairs with `src != dst`.
    ///
    /// This is the denominator the paper uses when normalizing offered load
    /// to network capacity.
    #[inline]
    pub fn avg_distance(&self) -> f64 {
        self.avg_distance
    }

    fn compute_avg_distance(&self) -> f64 {
        // Distance is separable across dimensions, so compute the mean
        // per-dimension offset cost over *all* ordered pairs, then rescale to
        // exclude the src == dst pairs (which all have distance zero).
        let k = self.k as u64;
        let mut mean_all = 0.0f64;
        for _dim in 0..self.n {
            let mut total = 0u64;
            if self.wrap {
                for a in 0..k {
                    for b in 0..k {
                        let fwd = (b + k - a) % k;
                        let d = if self.bidirectional {
                            fwd.min(k - fwd).min(fwd)
                        } else {
                            fwd
                        };
                        total += d;
                    }
                }
            } else {
                for a in 0..k {
                    for b in 0..k {
                        total += a.abs_diff(b);
                    }
                }
            }
            mean_all += total as f64 / (k * k) as f64;
        }
        let nn = self.num_nodes as f64;
        mean_all * nn / (nn - 1.0)
    }

    /// True when the channel is a torus wraparound link (crosses the
    /// "dateline" of its dimension). Dateline-based deadlock-avoidance
    /// schemes switch virtual-channel classes on these links.
    pub fn is_wraparound(&self, c: ChannelId) -> bool {
        if !self.wrap {
            return false;
        }
        let info = self.channel(c);
        let coord = self.coords(info.src).get(info.dim as usize);
        match info.dir {
            Direction::Plus => coord == self.k - 1,
            Direction::Minus => coord == 0,
        }
    }

    /// Network capacity in flits per node per cycle: every physical channel
    /// carrying one flit per cycle, divided among nodes whose messages each
    /// consume `avg_distance` channel-cycles per flit.
    pub fn capacity_flits_per_node_cycle(&self) -> f64 {
        self.num_channels() as f64 / (self.num_nodes() as f64 * self.avg_distance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bi_torus_counts() {
        let t = KAryNCube::torus(16, 2, true);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_channels(), 1024); // 4 outgoing per node
        assert_eq!(t.ports_per_node(), 4);
    }

    #[test]
    fn uni_torus_counts() {
        let t = KAryNCube::torus(16, 2, false);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_channels(), 512); // 2 outgoing per node
    }

    #[test]
    fn mesh_counts() {
        let m = KAryNCube::mesh(4, 2);
        assert_eq!(m.num_nodes(), 16);
        // per dimension: 2 * k^(n-1) * (k-1) = 2*4*3 = 24; two dims = 48.
        assert_eq!(m.num_channels(), 48);
    }

    #[test]
    fn four_ary_four_cube_counts() {
        let t = KAryNCube::torus(4, 4, true);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_channels(), 256 * 8);
    }

    #[test]
    fn coords_roundtrip() {
        let t = KAryNCube::torus(5, 3, true);
        for id in 0..t.num_nodes() as u32 {
            let n = NodeId(id);
            assert_eq!(t.node_at(&t.coords(n)), n);
        }
    }

    #[test]
    fn torus_wraps() {
        let t = KAryNCube::torus(4, 2, true);
        // node (3, 0) in +x wraps to (0, 0)
        let n = t.node_at(&Coords::new(&[3, 0]));
        assert_eq!(
            t.neighbor(n, 0, Direction::Plus),
            Some(t.node_at(&Coords::new(&[0, 0])))
        );
        assert_eq!(
            t.neighbor(NodeId(0), 1, Direction::Minus),
            Some(t.node_at(&Coords::new(&[0, 3])))
        );
    }

    #[test]
    fn mesh_has_edges() {
        let m = KAryNCube::mesh(4, 2);
        let corner = m.node_at(&Coords::new(&[0, 0]));
        assert_eq!(m.neighbor(corner, 0, Direction::Minus), None);
        assert_eq!(m.neighbor(corner, 1, Direction::Minus), None);
        assert!(m.neighbor(corner, 0, Direction::Plus).is_some());
        assert_eq!(m.channel_from(corner, 0, Direction::Minus), None);
    }

    #[test]
    fn uni_torus_has_no_minus_channels() {
        let t = KAryNCube::torus(8, 2, false);
        for node in 0..t.num_nodes() as u32 {
            assert_eq!(t.channel_from(NodeId(node), 0, Direction::Minus), None);
            assert_eq!(t.channel_from(NodeId(node), 1, Direction::Minus), None);
        }
    }

    #[test]
    fn channel_lookup_matches_info() {
        let t = KAryNCube::torus(6, 2, true);
        for id in 0..t.num_channels() as u32 {
            let c = ChannelId(id);
            let info = *t.channel(c);
            assert_eq!(
                t.channel_from(info.src, info.dim as usize, info.dir),
                Some(c)
            );
            assert_eq!(
                t.neighbor(info.src, info.dim as usize, info.dir),
                Some(info.dst)
            );
            assert_eq!(t.channel_between(info.src, info.dst), Some(c));
        }
    }

    #[test]
    fn distances_bi_torus() {
        let t = KAryNCube::torus(16, 2, true);
        let a = t.node_at(&Coords::new(&[0, 0]));
        let b = t.node_at(&Coords::new(&[15, 0]));
        assert_eq!(t.distance(a, b), 1); // wraps
        let c = t.node_at(&Coords::new(&[8, 8]));
        assert_eq!(t.distance(a, c), 16);
    }

    #[test]
    fn distances_uni_torus() {
        let t = KAryNCube::torus(16, 2, false);
        let a = t.node_at(&Coords::new(&[1, 0]));
        let b = t.node_at(&Coords::new(&[0, 0]));
        // forward-only: must travel 15 hops around the ring
        assert_eq!(t.distance(a, b), 15);
        assert_eq!(t.distance(b, a), 1);
    }

    #[test]
    fn routing_offset_tie_detected() {
        let t = KAryNCube::torus(16, 2, true);
        let a = t.node_at(&Coords::new(&[0, 0]));
        let b = t.node_at(&Coords::new(&[8, 0]));
        assert_eq!(t.routing_offset(a, b, 0), RoutingOffset::Either(8));
        assert_eq!(t.routing_offset(a, b, 1), RoutingOffset::Zero);
    }

    #[test]
    fn avg_distance_known_values() {
        // Bidirectional 16-ary 2-cube: per-dim mean over all pairs is
        // 64/16 = 4.0; two dims = 8.0; rescaled by 256/255.
        let bi = KAryNCube::torus(16, 2, true);
        let expect = 8.0 * 256.0 / 255.0;
        assert!((bi.avg_distance() - expect).abs() < 1e-9);

        // Unidirectional: per-dim mean is (k-1)/2 = 7.5; two dims = 15.
        let uni = KAryNCube::torus(16, 2, false);
        let expect = 15.0 * 256.0 / 255.0;
        assert!((uni.avg_distance() - expect).abs() < 1e-9);
    }

    #[test]
    fn capacity_matches_paper_ballpark() {
        // bi 16-ary 2-cube: 1024 links / (256 nodes * ~8 hops) ≈ 0.5 f/n/c.
        let bi = KAryNCube::torus(16, 2, true);
        assert!((bi.capacity_flits_per_node_cycle() - 0.498).abs() < 0.01);
        let uni = KAryNCube::torus(16, 2, false);
        assert!((uni.capacity_flits_per_node_cycle() - 0.1328).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn uni_mesh_rejected() {
        let _ = KAryNCube::build(4, 2, false, false);
    }

    #[test]
    fn hypercube_structure() {
        let h = KAryNCube::hypercube(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.num_channels(), 4 * 16); // n outgoing per node
                                              // Neighbours differ in exactly one coordinate bit.
        for node in 0..16u32 {
            for &ch in h.channels_from(NodeId(node)) {
                let info = h.channel(ch);
                let diff = info.src.0 ^ info.dst.0;
                assert!(diff.is_power_of_two(), "hamming distance 1");
            }
        }
        // Distance = Hamming distance.
        assert_eq!(h.distance(NodeId(0b0000), NodeId(0b1011)), 3);
        // Node ids are the coordinate bit strings.
        assert_eq!(h.node_at(&Coords::new(&[1, 0, 1, 1])), NodeId(0b1101));
    }

    #[test]
    fn wraparound_channels_identified() {
        let t = KAryNCube::torus(4, 2, true);
        let wraps: usize = (0..t.num_channels() as u32)
            .filter(|&c| t.is_wraparound(ChannelId(c)))
            .count();
        // per dim per direction: k^(n-1) wrap links = 4; 2 dims * 2 dirs = 16.
        assert_eq!(wraps, 16);
        let m = KAryNCube::mesh(4, 2);
        assert!((0..m.num_channels() as u32).all(|c| !m.is_wraparound(ChannelId(c))));
    }

    #[test]
    fn channels_from_covers_all_channels() {
        let t = KAryNCube::torus(4, 3, true);
        let total: usize = (0..t.num_nodes() as u32)
            .map(|n| t.channels_from(NodeId(n)).len())
            .sum();
        assert_eq!(total, t.num_channels());
    }
}
