//! Running mean / variance.

/// Welford's online mean and variance over `f64` samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mean {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Mean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Serializes the accumulator state: `n`, then the running mean and
    /// M2 as `f64` bit patterns. Lossless counterpart of [`Mean::decode`].
    pub fn encode(&self) -> [u64; 3] {
        [self.n, self.mean.to_bits(), self.m2.to_bits()]
    }

    /// Rebuilds an accumulator from [`Mean::encode`] output.
    pub fn decode(words: [u64; 3]) -> Mean {
        Mean {
            n: words[0],
            mean: f64::from_bits(words[1]),
            m2: f64::from_bits(words[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mean_zero() {
        assert_eq!(Mean::new().mean(), 0.0);
        assert_eq!(Mean::new().variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut m = Mean::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let mut m = Mean::new();
        m.record(3.5);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.count(), 1);
    }
}
