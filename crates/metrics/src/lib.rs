//! Measurement plumbing shared by the simulator and the experiment harness.
//!
//! Nothing here knows about networks: [`Histogram`] is a streaming log-2
//! bucketed histogram (constant memory regardless of sample count),
//! [`Mean`] a Welford-style running mean/variance, [`TimeSeries`] a sampled
//! (cycle, value) trace, and [`saturation_point`] the offered-vs-accepted
//! load analysis the paper uses to place its vertical "saturation" markers.

mod hist;
mod saturation;
mod series;
mod stat;

pub use hist::Histogram;
pub use saturation::{saturation_point, SATURATION_EFFICIENCY};
pub use series::TimeSeries;
pub use stat::Mean;
