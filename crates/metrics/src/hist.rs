//! Streaming log-2 histogram.

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Tracks exact count/sum/min/max and an approximate distribution (each
/// bucket `b` covers `[2^(b-1), 2^b)`), in constant memory — latencies of
/// millions of messages are recorded without allocation.
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let b = 64 - v.leading_zeros() as usize; // 0 -> bucket 0
        self.buckets[b] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        self.max
    }

    /// Serializes the full internal state as `count, sum, min, max`
    /// followed by the 65 bucket counts (`min` raw, i.e. `u64::MAX` when
    /// empty) — the lossless counterpart of [`Histogram::decode`], used
    /// by sweep checkpoints.
    pub fn encode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(4 + self.buckets.len());
        out.push(self.count);
        out.push(self.sum);
        out.push(self.min);
        out.push(self.max);
        out.extend_from_slice(&self.buckets);
        out
    }

    /// Rebuilds a histogram from [`Histogram::encode`] output; `None` on
    /// a wrong-length slice.
    pub fn decode(words: &[u64]) -> Option<Histogram> {
        if words.len() != 4 + 65 {
            return None;
        }
        let mut buckets = [0u64; 65];
        buckets.copy_from_slice(&words[4..]);
        Some(Histogram {
            count: words[0],
            sum: words[1],
            min: words[2],
            max: words[3],
            buckets,
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn basic_stats() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 4, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn zero_sample_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q10 <= q50 && q50 <= q99);
        assert!((255..=1023).contains(&q50), "median bucket bound {q50}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(7);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 13);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 7);
    }

    #[test]
    fn huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.max(), u64::MAX / 2);
        assert!(h.quantile(1.0) >= u64::MAX / 2);
    }
}
