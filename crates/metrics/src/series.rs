//! Sampled time series.

/// A (cycle, value) trace sampled during a run, e.g. the number of resource
/// dependency cycles at each detection epoch.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Cycles must be non-decreasing.
    pub fn push(&mut self, cycle: u64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(cycle >= last, "samples must be time-ordered");
        }
        self.points.push((cycle, value));
    }

    /// The raw samples.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Rebuilds a series from raw samples (the inverse of
    /// [`TimeSeries::points`]). Panics if cycles are not non-decreasing —
    /// the same contract [`TimeSeries::push`] enforces.
    pub fn from_points(points: Vec<(u64, f64)>) -> TimeSeries {
        for w in points.windows(2) {
            assert!(w[1].0 >= w[0].0, "samples must be time-ordered");
        }
        TimeSeries { points }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value seen, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Last value, or `None` when empty.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of the values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new();
        s.push(0, 1.0);
        s.push(50, 3.0);
        s.push(100, 2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.last(), Some(2.0));
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 1.0);
    }
}
