//! Saturation-load analysis.

/// Fraction of offered load that must be accepted for the network to count
/// as unsaturated. The paper marks saturation where delivered throughput
/// stops tracking offered load.
pub const SATURATION_EFFICIENCY: f64 = 0.95;

/// Given a load sweep of `(offered, accepted)` points (both as normalized
/// loads, sorted by offered load), returns the first offered load at which
/// the network fails to accept [`SATURATION_EFFICIENCY`] of what is
/// offered — the saturation point — or `None` when the network keeps up
/// across the whole sweep.
pub fn saturation_point(points: &[(f64, f64)]) -> Option<f64> {
    points
        .iter()
        .find(|&&(offered, accepted)| offered > 0.0 && accepted < SATURATION_EFFICIENCY * offered)
        .map(|&(offered, _)| offered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsaturated_sweep() {
        let pts = [(0.1, 0.1), (0.2, 0.199), (0.3, 0.297)];
        assert_eq!(saturation_point(&pts), None);
    }

    #[test]
    fn finds_first_saturated_point() {
        let pts = [(0.2, 0.2), (0.4, 0.39), (0.6, 0.45), (0.8, 0.46)];
        assert_eq!(saturation_point(&pts), Some(0.6));
    }

    #[test]
    fn zero_load_ignored() {
        let pts = [(0.0, 0.0), (0.5, 0.5)];
        assert_eq!(saturation_point(&pts), None);
    }

    #[test]
    fn empty_sweep() {
        assert_eq!(saturation_point(&[]), None);
    }
}
