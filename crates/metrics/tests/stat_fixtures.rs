//! Numerical audit of the Welford accumulator in `icn_metrics::Mean`.
//!
//! Two classes of checks: hand-computed fixtures with exact closed-form
//! answers, and precision regressions that would fail for the textbook
//! one-pass formula `E[x^2] - E[x]^2` (catastrophic cancellation when the
//! mean dwarfs the spread — exactly the shape of latency samples late in a
//! long run, where cycle stamps grow while jitter stays small).

use icn_metrics::Mean;
use proptest::prelude::*;

fn accumulate(samples: &[f64]) -> Mean {
    let mut m = Mean::new();
    for &x in samples {
        m.record(x);
    }
    m
}

/// Accurate two-pass reference: exact mean, then centered sum of squares.
fn two_pass(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

#[test]
fn fixture_integers() {
    // {1..10}: mean 5.5, population variance (n^2-1)/12 = 8.25.
    let m = accumulate(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
    assert_eq!(m.count(), 10);
    assert!((m.mean() - 5.5).abs() < 1e-12);
    assert!((m.variance() - 8.25).abs() < 1e-12);
}

#[test]
fn fixture_constant_sequence_has_zero_variance() {
    let m = accumulate(&[42.0; 1000]);
    assert_eq!(m.mean(), 42.0);
    assert_eq!(m.variance(), 0.0);
    assert_eq!(m.std_dev(), 0.0);
}

#[test]
fn fixture_symmetric_negatives() {
    // {-3, -1, 1, 3}: mean 0, variance (9+1+1+9)/4 = 5.
    let m = accumulate(&[-3.0, -1.0, 1.0, 3.0]);
    assert!(m.mean().abs() < 1e-15);
    assert!((m.variance() - 5.0).abs() < 1e-12);
    assert!((m.std_dev() - 5.0f64.sqrt()).abs() < 1e-12);
}

#[test]
fn fixture_two_samples() {
    // {a, b}: mean (a+b)/2, population variance ((a-b)/2)^2.
    let m = accumulate(&[3.0, 11.0]);
    assert!((m.mean() - 7.0).abs() < 1e-15);
    assert!((m.variance() - 16.0).abs() < 1e-12);
}

#[test]
fn precision_large_offset_regression() {
    // Spread 22.5 sitting on a 1e9 offset. The naive one-pass formula
    // subtracts ~1e18-magnitude quantities and loses every significant
    // digit of the variance; Welford must stay exact to ~1e-6 relative.
    let base = 1.0e9;
    let samples = [base + 4.0, base + 7.0, base + 13.0, base + 16.0];
    let m = accumulate(&samples);
    assert!((m.mean() - (base + 10.0)).abs() < 1e-6);
    assert!(
        (m.variance() - 22.5).abs() < 1e-6 * 22.5,
        "variance {} drifted from 22.5",
        m.variance()
    );

    // Demonstrate the failure mode being guarded against: the cancelling
    // formula is off by orders of magnitude more than Welford here.
    let naive_var = samples.iter().map(|x| x * x).sum::<f64>() / 4.0
        - (samples.iter().sum::<f64>() / 4.0).powi(2);
    let naive_err = (naive_var - 22.5).abs();
    let welford_err = (m.variance() - 22.5).abs();
    assert!(
        welford_err * 100.0 < naive_err.max(1e-12),
        "welford err {welford_err} vs naive err {naive_err}"
    );
}

#[test]
fn precision_huge_count_of_offset_samples() {
    // A million samples alternating base ± 1: variance exactly 1.
    let base = 1.0e12;
    let mut m = Mean::new();
    for i in 0..1_000_000u64 {
        m.record(base + if i % 2 == 0 { 1.0 } else { -1.0 });
    }
    assert_eq!(m.count(), 1_000_000);
    assert!((m.mean() - base).abs() < 1e-3);
    assert!(
        (m.variance() - 1.0).abs() < 1e-6,
        "variance {}",
        m.variance()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_two_pass_reference(seed in any::<u64>(), n in 2usize..200, offset_pow in 0u32..10) {
        // Deterministic pseudo-random samples on a configurable offset so
        // the comparison stresses both centered and far-from-zero data.
        let offset = 10f64.powi(offset_pow as i32);
        let mut state = seed | 1;
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                offset + ((state >> 11) as f64 / (1u64 << 53) as f64) * 100.0 - 50.0
            })
            .collect();
        let m = accumulate(&samples);
        let (mean, var) = two_pass(&samples);
        prop_assert_eq!(m.count(), n as u64);
        prop_assert!((m.mean() - mean).abs() <= 1e-9 * mean.abs().max(1.0));
        prop_assert!(
            (m.variance() - var).abs() <= 1e-6 * var.max(1.0),
            "welford {} vs two-pass {}",
            m.variance(),
            var
        );
        prop_assert!(m.variance() >= 0.0);
    }

    #[test]
    fn mean_stays_within_sample_bounds(seed in any::<u64>(), n in 1usize..64) {
        let mut state = seed | 1;
        let mut m = Mean::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2000.0 - 1000.0;
            lo = lo.min(x);
            hi = hi.max(x);
            m.record(x);
            // The running mean is a convex combination of the samples seen
            // so far, so it can never escape their range.
            prop_assert!(m.mean() >= lo - 1e-9 && m.mean() <= hi + 1e-9);
        }
    }
}
