//! Traffic-pattern exploration (§3.6): how do the classic non-uniform
//! patterns change congestion and deadlock formation compared to uniform
//! traffic? Also shows the paper's DOR exception — patterns like matrix
//! transpose cannot produce the circular overlap a DOR torus deadlock
//! needs.
//!
//! ```text
//! cargo run --release --example traffic_patterns
//! ```

use flexsim::report::{fnum, Table};
use flexsim::{sweep, RoutingSpec, RunConfig, TopologySpec};
use icn_topology::NodeId;
use icn_traffic::Pattern;

fn main() {
    let patterns = [
        Pattern::Uniform,
        Pattern::BitReversal,
        Pattern::Transpose,
        Pattern::PerfectShuffle,
        Pattern::BitComplement,
        Pattern::HotSpot {
            hot: NodeId(8 * 4 + 4),
            fraction: 0.1,
        },
    ];

    let mut configs = Vec::new();
    for routing in [RoutingSpec::Dor, RoutingSpec::Tfar] {
        for p in &patterns {
            let mut c = RunConfig::paper_default();
            c.topology = TopologySpec::torus(8, 2, true);
            c.routing = routing;
            c.sim.vcs_per_channel = 1;
            c.pattern = p.clone();
            c.load = 1.0; // deep saturation: deadlocks where possible
            c.warmup = 2_000;
            c.measure = 8_000;
            configs.push(c);
        }
    }

    println!(
        "running {} points (8-ary 2-cube, 1 VC, load 1.0)...",
        configs.len()
    );
    let results = sweep(&configs);

    let mut t = Table::new([
        "routing",
        "pattern",
        "accepted",
        "blk%",
        "deadlocks",
        "ndl",
        "dls.avg",
    ]);
    for (cfg, r) in configs.iter().zip(&results) {
        t.row([
            cfg.routing.name().to_string(),
            cfg.pattern.name().to_string(),
            fnum(r.accepted_load()),
            fnum(100.0 * r.blocked_fraction()),
            r.deadlocks.to_string(),
            fnum(r.normalized_deadlocks()),
            fnum(r.deadlock_set.mean()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Note the DOR rows: permutations without circular overlap (e.g. transpose)\n\
         form far fewer (often zero) deadlocks than uniform traffic, while TFAR's\n\
         deadlock behaviour stays broadly similar across patterns — §3.6's finding."
    );
}
