//! Static avoidance analysis vs dynamic deadlock detection — the two uses
//! of dependency graphs the paper's related-work section contrasts.
//!
//! The *static* channel-dependency graph describes every connection a
//! routing relation could ever make: acyclicity proves deadlock freedom
//! (avoidance theory). The *dynamic* channel wait-for graph describes one
//! instant of one execution: a knot is an actual deadlock. This example
//! runs both analyses over the same set of routing relations and shows
//! they agree — relations with cyclic static dependencies really deadlock
//! under load, and relations with acyclic (or acyclic-escape) structure
//! never do.
//!
//! ```text
//! cargo run --release --example static_vs_dynamic
//! ```

use flexsim::report::Table;
use flexsim::{run, RoutingSpec, RunConfig, TopologySpec};
use icn_routing::verify::{channel_dependency_graph, has_cycle, subgraph};
use icn_topology::KAryNCube;

fn main() {
    let torus = KAryNCube::torus(4, 2, true);
    let mut t = Table::new([
        "relation",
        "vcs",
        "static dependencies",
        "observed deadlocks (load 1.0)",
    ]);

    let cases = [
        (RoutingSpec::Dor, 1),
        (RoutingSpec::Tfar, 1),
        (RoutingSpec::DatelineDor, 2),
        (RoutingSpec::Duato, 3),
    ];

    for (spec, vcs) in cases {
        // Static analysis.
        let adj = channel_dependency_graph(&*spec.build(), &torus, vcs);
        let static_verdict = if !has_cycle(&adj) {
            "acyclic (deadlock-free)".to_string()
        } else if spec == RoutingSpec::Duato {
            let escape = subgraph(&adj, |v| (v as usize % vcs) < 2);
            if has_cycle(&escape) {
                "cyclic, escape cyclic (!)".to_string()
            } else {
                "cyclic, escape acyclic (deadlock-free)".to_string()
            }
        } else {
            "cyclic (deadlock possible)".to_string()
        };

        // Dynamic measurement: hammer a small torus and count true
        // deadlocks with the knot detector.
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(4, 2, true);
        cfg.routing = spec;
        cfg.sim.vcs_per_channel = vcs;
        cfg.load = 1.0;
        cfg.warmup = 1_000;
        cfg.measure = 6_000;
        let r = run(&cfg);

        t.row([
            spec.name().to_string(),
            vcs.to_string(),
            static_verdict,
            r.deadlocks.to_string(),
        ]);
    }

    println!("{}", t.render());
    println!(
        "Cyclic static dependencies are necessary for deadlock; the detector\n\
         confirms which of them matter in practice — and how often, which is\n\
         the question the paper set out to answer."
    );
}
