//! The paper's motivating question (§1): given the same virtual-channel
//! budget, is it better to *avoid* deadlock by restricting routing, or to
//! route without restrictions and *recover* from the rare deadlocks?
//!
//! This example pits three 3-VC designs against each other on the default
//! bidirectional 16-ary 2-cube:
//!
//! * recovery-based TFAR (unrestricted VC use + Disha-style recovery),
//! * Duato's protocol (adaptive with an escape layer — avoidance),
//! * dateline DOR (fully static avoidance),
//!
//! and prints throughput, latency, and deadlock counts across load.
//!
//! ```text
//! cargo run --release --example avoidance_vs_recovery
//! ```

use flexsim::report::{fnum, Table};
use flexsim::{sweep, RoutingSpec, RunConfig};

fn main() {
    let mut configs = Vec::new();
    let designs = [
        ("TFAR+recovery", RoutingSpec::Tfar),
        ("Duato (avoidance)", RoutingSpec::Duato),
        ("dateline DOR (avoidance)", RoutingSpec::DatelineDor),
    ];
    let loads = [0.2, 0.4, 0.6, 0.8];
    for (_, routing) in designs {
        for &load in &loads {
            let mut c = RunConfig::paper_default();
            c.topology = flexsim::TopologySpec::torus(8, 2, true);
            c.routing = routing;
            c.sim.vcs_per_channel = 3;
            c.load = load;
            c.warmup = 2_000;
            c.measure = 8_000;
            configs.push(c);
        }
    }

    println!(
        "running {} points (8-ary 2-cube, 3 VCs each)...",
        configs.len()
    );
    let results = sweep(&configs);

    let mut t = Table::new([
        "design",
        "load",
        "accepted",
        "latency",
        "deadlocks",
        "recovered",
    ]);
    for (cfg, r) in configs.iter().zip(&results) {
        let name = designs.iter().find(|(_, rt)| *rt == cfg.routing).unwrap().0;
        t.row([
            name.to_string(),
            format!("{:.1}", cfg.load),
            fnum(r.accepted_load()),
            fnum(r.avg_latency()),
            r.deadlocks.to_string(),
            r.recovered.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "With 3 unrestricted VCs, TFAR sees (at most) rare deadlocks while using\n\
         every VC for routing; the avoidance designs give up VCs (escape lanes,\n\
         dateline classes) to guarantee freedom. This is the trade-off the paper\n\
         quantifies — and why it concludes recovery-based routing is viable."
    );
}
