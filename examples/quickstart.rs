//! Quickstart: simulate a 16-ary 2-cube with true fully adaptive routing
//! and one virtual channel, detect true deadlocks with the CWG knot
//! detector, break them Disha-style, and print the run's statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flexsim::{run, RoutingSpec, RunConfig};

fn main() {
    let mut cfg = RunConfig::paper_default();
    cfg.routing = RoutingSpec::Tfar;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 0.3; // past TFAR1's saturation: deadlocks will appear
    cfg.warmup = 2_000;
    cfg.measure = 8_000;

    println!("running: {}", cfg.label());
    let r = run(&cfg);

    println!("cycles measured       : {}", r.cycles);
    println!(
        "messages delivered    : {} ({} via recovery)",
        r.delivered, r.recovered
    );
    println!(
        "accepted load         : {:.3} of capacity",
        r.accepted_load()
    );
    println!("mean latency          : {:.1} cycles", r.avg_latency());
    println!(
        "blocked (avg)         : {:.1}% of in-network messages",
        100.0 * r.blocked_fraction()
    );
    println!();
    println!(
        "true deadlocks        : {} ({} single-cycle, {} multi-cycle)",
        r.deadlocks, r.single_cycle_deadlocks, r.multi_cycle_deadlocks
    );
    println!(
        "normalized deadlocks  : {:.4} per delivered message",
        r.normalized_deadlocks()
    );
    if r.deadlocks > 0 {
        println!(
            "deadlock set size     : mean {:.1}, max {}",
            r.deadlock_set.mean(),
            r.deadlock_set.max()
        );
        println!(
            "resource set size     : mean {:.1}, max {}",
            r.resource_set.mean(),
            r.resource_set.max()
        );
        println!(
            "knot cycle density    : mean {:.1}, max {}",
            r.knot_density.mean(),
            r.knot_density.max()
        );
        println!(
            "dependent messages    : {} committed, {} transient",
            r.dependent_committed, r.dependent_transient
        );
    }
}
