//! Anatomy of a deadlock: deterministically construct the paper's
//! Figure-1-style single-cycle deadlock on a unidirectional ring, print
//! the channel wait-for graph, identify the knot, classify the deadlock,
//! and watch Disha-style recovery dissolve it.
//!
//! ```text
//! cargo run --release --example deadlock_anatomy
//! ```

use flexsim::build_wait_graph;
use icn_routing::Dor;
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};

fn main() {
    // A 4-node unidirectional ring: the smallest torus where dimension-
    // order routing deadlocks. Four messages, each two hops clockwise,
    // injected simultaneously: every one grabs its first channel and then
    // waits for the channel its neighbour holds.
    let topo = KAryNCube::torus(4, 1, false);
    let mut net = Network::new(
        topo,
        Box::new(Dor),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    for i in 0..4u32 {
        net.enqueue(NodeId(i), NodeId((i + 2) % 4));
        println!("message m{i}: n{} -> n{}", i, (i + 2) % 4);
    }

    for _ in 0..30 {
        net.step();
    }
    println!(
        "\nafter 30 cycles: {} in network, {} blocked",
        net.in_network(),
        net.blocked_count()
    );

    // Build and analyze the channel wait-for graph.
    let snap = net.wait_snapshot();
    println!("\nchannel wait-for graph:");
    for m in &snap.messages {
        println!("  m{} owns {:?}, waits for {:?}", m.id, m.chain, m.requests);
    }
    let graph = build_wait_graph(&snap);
    let analysis = graph.analyze(1_000);

    assert!(analysis.has_deadlock(), "the ring must be deadlocked");
    let d = &analysis.deadlocks[0];
    println!("\nKNOT found: vertices {:?}", d.knot);
    println!(
        "  deadlock set : {:?} (removing any of these resolves it)",
        d.deadlock_set
    );
    println!("  resource set : {:?}", d.resource_set);
    println!(
        "  cycle density: {} => {:?} deadlock",
        d.cycle_density,
        d.kind()
    );

    // Break it by removing the oldest deadlock-set message, flit by flit.
    let victim = *d.deadlock_set.iter().min().unwrap();
    println!("\nrecovering victim m{victim} through the recovery lane...");
    assert!(net.start_recovery(victim));

    let mut done = 0;
    for cycle in 0..500 {
        let ev = net.step();
        for del in ev.delivered {
            println!(
                "  cycle {:>3}: m{} delivered ({}, latency {})",
                cycle,
                del.id,
                if del.recovered {
                    "recovered"
                } else {
                    "normal route"
                },
                del.latency
            );
            done += 1;
        }
        if done == 4 {
            break;
        }
    }
    assert_eq!(done, 4, "breaking one victim must unblock the rest");
    println!("\nall messages delivered; deadlock resolved by one removal.");
}
