//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, [`Strategy`] with
//! [`Strategy::prop_map`], integer-range and [`any`] strategies, tuple
//! composition, and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! deterministic seed (derived from the test name), and failing cases are
//! **not shrunk** — the panic message reports the case index instead.

/// Per-test deterministic generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from the test's name, so every test draws an
    /// independent deterministic stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                let strategy = ( $($strat,)+ );
                for __proptest_case in 0..config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let _ = &__proptest_case;
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The usual prelude: everything a `proptest!` body needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 3usize..17, w in any::<bool>()) {
            prop_assert!((3..17).contains(&v));
            let _ = w;
        }

        #[test]
        fn mapped_strategies_apply(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }
}
