//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_bool` / `gen_range` over integer ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid and fully deterministic for a given seed, which is all the
//! simulator requires (runs are reproducible per seed; no test depends on
//! the exact stream of the upstream ChaCha-based `StdRng`).

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform sample from `range` (half-open, `start..end`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo over a 64-bit draw: the bias is < span/2^64, far
                // below anything the simulator's statistics could resolve.
                let draw = rng.next_u64() as u128 % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng` — but the workspace only relies
    /// on determinism-per-seed and statistical quality, not on a specific
    /// stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(same < 20, "distinct seeds should diverge");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5i32..7);
            assert!((5..7).contains(&v));
        }
    }
}
