//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small wall-clock benchmarking harness exposing the criterion
//! surface the bench targets use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] knobs (`sample_size`, `warm_up_time`,
//! `measurement_time`, `throughput`), [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Results are reported as median ns/iter over the collected samples on
//! stdout; there is no statistical analysis, plotting, or state directory.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value (best-effort).
pub fn black_box<T>(v: T) -> T {
    std::hint::black_box(v)
}

/// Throughput annotation for a benchmark group (reported, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times the benchmarked routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point: hands out benchmark groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// A group-less benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.id.clone();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().id;
        self.run(&id, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };

        // Warm-up: also calibrates iterations per sample.
        let mut iters_per_sample = 1u64;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += iters_per_sample;
            if b.elapsed < Duration::from_millis(1) {
                iters_per_sample = iters_per_sample.saturating_mul(2);
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_budget = self.measurement.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let iters = ((sample_budget / per_iter.max(1.0)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:.3} MB/s", n as f64 * 1e3 / median)
            }
            None => String::new(),
        };
        println!(
            "{label:<48} time: [{} {} {}]{tp}",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one runner (`criterion_group!(name, f1,
/// f2, ...)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let input = 1000u64;
        g.throughput(Throughput::Elements(input));
        g.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1u32)));
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
